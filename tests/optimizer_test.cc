// Tests for the optimizer (§7.3): each rewrite rule in isolation (plan
// shape assertions) plus result-preservation properties on real graphs —
// including the paper's Figure 6 pushdown and the ϕWalk→ϕShortest family.

#include <gtest/gtest.h>

#include <algorithm>

#include "plan/evaluator.h"
#include "plan/optimizer.h"
#include "workload/figure1.h"
#include "workload/generators.h"

namespace pathalg {
namespace {

PlanPtr KnowsEdgesPlan() {
  return PlanNode::Select(EdgeLabelEq(1, "Knows"), PlanNode::EdgesScan());
}

bool Applied(const OptimizeResult& r, std::string_view rule) {
  return std::find(r.applied.begin(), r.applied.end(), rule) !=
         r.applied.end();
}

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override { g_ = MakeFigure1Graph(&ids_); }
  PropertyGraph g_;
  Figure1Ids ids_;
};

// ---------------------------------------------------------------------------
// Figure 6: predicate pushdown through the join.
// ---------------------------------------------------------------------------
TEST_F(OptimizerTest, Figure6PushdownShape) {
  // 6a: σ_{first.name="Moe"}(σK(E) ⋈ σK(E)).
  PlanPtr plan_6a =
      PlanNode::Select(FirstPropEq("name", Value("Moe")),
                       PlanNode::Join(KnowsEdgesPlan(), KnowsEdgesPlan()));
  OptimizeResult opt = Optimize(plan_6a);
  EXPECT_TRUE(Applied(opt, "select-pushdown"));
  // 6b (after pushdown + merge): σ merged into the left scan's select.
  PlanPtr plan_6b = PlanNode::Join(
      PlanNode::Select(Condition::And(FirstPropEq("name", Value("Moe")),
                                      EdgeLabelEq(1, "Knows")),
                       PlanNode::EdgesScan()),
      KnowsEdgesPlan());
  EXPECT_TRUE(opt.plan->Equals(*plan_6b))
      << "got:\n"
      << opt.plan->ToTreeString() << "want:\n"
      << plan_6b->ToTreeString();
}

TEST_F(OptimizerTest, Figure6PushdownPreservesResult) {
  PlanPtr plan = PlanNode::Select(
      FirstPropEq("name", Value("Moe")),
      PlanNode::Join(KnowsEdgesPlan(), KnowsEdgesPlan()));
  auto before = Evaluate(g_, plan);
  auto after = Evaluate(g_, Optimize(plan).plan);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);
}

TEST_F(OptimizerTest, LastConditionPushesRight) {
  PlanPtr plan = PlanNode::Select(
      LastPropEq("name", Value("Apu")),
      PlanNode::Join(KnowsEdgesPlan(), KnowsEdgesPlan()));
  OptimizeResult opt = Optimize(plan);
  PlanPtr want = PlanNode::Join(
      KnowsEdgesPlan(),
      PlanNode::Select(Condition::And(LastPropEq("name", Value("Apu")),
                                      EdgeLabelEq(1, "Knows")),
                       PlanNode::EdgesScan()));
  EXPECT_TRUE(opt.plan->Equals(*want)) << opt.plan->ToTreeString();
}

TEST_F(OptimizerTest, ConjunctsSplitAcrossJoin) {
  // first.* goes left, last.* goes right, len() stays above.
  auto cond = Condition::And(
      Condition::And(FirstPropEq("name", Value("Moe")),
                     LastPropEq("name", Value("Apu"))),
      LenEq(2));
  PlanPtr plan = PlanNode::Select(
      cond, PlanNode::Join(KnowsEdgesPlan(), KnowsEdgesPlan()));
  OptimizeResult opt = Optimize(plan);
  ASSERT_EQ(opt.plan->kind(), PlanKind::kSelect);
  EXPECT_TRUE(UsesLen(*opt.plan->condition()));
  EXPECT_FALSE(RefersOnlyToFirstNode(*opt.plan->condition()));
  ASSERT_EQ(opt.plan->child()->kind(), PlanKind::kJoin);
  auto before = Evaluate(g_, plan);
  auto after = Evaluate(g_, opt.plan);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);
}

TEST_F(OptimizerTest, PositionalConditionsPushWhenLeftIsFixedLength) {
  // Left operand of the join is Edges (fixed length 1): edge(1) and
  // node(2) live in the left side; edge(2) does not.
  auto cond = Condition::And(
      Condition::And(EdgeLabelEq(1, "Knows"), EdgeLabelEq(2, "Knows")),
      NodePropEq(2, "name", Value("Homer")));
  PlanPtr plan = PlanNode::Select(
      cond, PlanNode::Join(PlanNode::EdgesScan(), PlanNode::EdgesScan()));
  OptimizeResult opt = Optimize(plan);
  // edge(2) must remain above the join.
  ASSERT_EQ(opt.plan->kind(), PlanKind::kSelect);
  EXPECT_EQ(MaxEdgePosition(*opt.plan->condition(), 99), 2u);
  // edge(1) and node(2) moved into the left operand.
  ASSERT_EQ(opt.plan->child()->kind(), PlanKind::kJoin);
  const PlanPtr& left = opt.plan->child()->child(0);
  ASSERT_EQ(left->kind(), PlanKind::kSelect);
  EXPECT_EQ(MaxEdgePosition(*left->condition(), 99), 1u);
  auto before = Evaluate(g_, plan);
  auto after = Evaluate(g_, opt.plan);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);
}

TEST_F(OptimizerTest, PositionalConditionsDontPushPastUnboundedLeft) {
  // Left operand is a ϕ: its length is not statically fixed, so a
  // positional condition must stay above the join.
  PlanPtr phi = PlanNode::Recursive(PathSemantics::kTrail, KnowsEdgesPlan());
  PlanPtr plan = PlanNode::Select(
      EdgeLabelEq(1, "Knows"), PlanNode::Join(phi, PlanNode::EdgesScan()));
  OptimizeResult opt = Optimize(plan);
  ASSERT_EQ(opt.plan->kind(), PlanKind::kSelect);
  ASSERT_EQ(opt.plan->child()->kind(), PlanKind::kJoin);
  EXPECT_EQ(opt.plan->child()->child(0)->kind(), PlanKind::kRecursive);
}

TEST_F(OptimizerTest, PushdownThroughUnion) {
  PlanPtr plan = PlanNode::Select(
      FirstPropEq("name", Value("Moe")),
      PlanNode::Union(KnowsEdgesPlan(), PlanNode::NodesScan()));
  OptimizeResult opt = Optimize(plan);
  EXPECT_TRUE(Applied(opt, "select-pushdown"));
  ASSERT_EQ(opt.plan->kind(), PlanKind::kUnion);
  auto before = Evaluate(g_, plan);
  auto after = Evaluate(g_, opt.plan);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);
}

TEST_F(OptimizerTest, SelectMerge) {
  PlanPtr plan = PlanNode::Select(
      FirstPropEq("name", Value("Moe")),
      PlanNode::Select(LenEq(1), PlanNode::EdgesScan()));
  OptimizeResult opt = Optimize(plan);
  EXPECT_TRUE(Applied(opt, "select-merge"));
  ASSERT_EQ(opt.plan->kind(), PlanKind::kSelect);
  EXPECT_EQ(opt.plan->child()->kind(), PlanKind::kEdgesScan);
  auto before = Evaluate(g_, plan);
  auto after = Evaluate(g_, opt.plan);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);
}

// ---------------------------------------------------------------------------
// OrderBy simplification (§6's redundant-τ example).
// ---------------------------------------------------------------------------
TEST_F(OptimizerTest, RedundantOrderByRemovedAfterGroupByNone) {
  // §6: "the order-by operator τPG is unnecessary as the operator γ returns
  // a solution space with a single partition and a single group."
  PlanPtr plan = PlanNode::Project(
      {std::nullopt, std::nullopt, 1},
      PlanNode::OrderBy(
          OrderKey::kPG,
          PlanNode::GroupBy(GroupKey::kNone,
                            PlanNode::Recursive(PathSemantics::kTrail,
                                                KnowsEdgesPlan()))));
  OptimizeResult opt = Optimize(plan);
  EXPECT_TRUE(Applied(opt, "orderby-simplify"));
  PlanPtr want = PlanNode::Project(
      {std::nullopt, std::nullopt, 1},
      PlanNode::GroupBy(GroupKey::kNone,
                        PlanNode::Recursive(PathSemantics::kTrail,
                                            KnowsEdgesPlan())));
  EXPECT_TRUE(opt.plan->Equals(*want)) << opt.plan->ToTreeString();
}

TEST_F(OptimizerTest, OrderByReducedToMeaningfulComponents) {
  // τPGA over γST: the G component is a no-op (one group per partition).
  PlanPtr plan = PlanNode::Project(
      {std::nullopt, std::nullopt, 1},
      PlanNode::OrderBy(
          OrderKey::kPGA,
          PlanNode::GroupBy(GroupKey::kST,
                            PlanNode::Recursive(PathSemantics::kTrail,
                                                KnowsEdgesPlan()))));
  OptimizeResult opt = Optimize(plan);
  // Find the OrderBy below the Project.
  ASSERT_EQ(opt.plan->kind(), PlanKind::kProject);
  ASSERT_EQ(opt.plan->child()->kind(), PlanKind::kOrderBy);
  EXPECT_EQ(opt.plan->child()->order_key(), OrderKey::kPA);
  auto before = Evaluate(g_, plan);
  auto after = Evaluate(g_, opt.plan);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);
}

TEST_F(OptimizerTest, ConsecutiveOrderBysMerge) {
  PlanPtr plan = PlanNode::Project(
      {std::nullopt, std::nullopt, 1},
      PlanNode::OrderBy(
          OrderKey::kP,
          PlanNode::OrderBy(
              OrderKey::kA,
              PlanNode::GroupBy(GroupKey::kSTL,
                                PlanNode::Recursive(PathSemantics::kTrail,
                                                    KnowsEdgesPlan())))));
  OptimizeResult opt = Optimize(plan);
  ASSERT_EQ(opt.plan->child()->kind(), PlanKind::kOrderBy);
  EXPECT_EQ(opt.plan->child()->order_key(), OrderKey::kPA);
  EXPECT_EQ(opt.plan->child()->child()->kind(), PlanKind::kGroupBy);
}

// ---------------------------------------------------------------------------
// Union dedup and project-all.
// ---------------------------------------------------------------------------
TEST_F(OptimizerTest, UnionDedup) {
  PlanPtr plan = PlanNode::Union(KnowsEdgesPlan(), KnowsEdgesPlan());
  OptimizeResult opt = Optimize(plan);
  EXPECT_TRUE(Applied(opt, "union-dedup"));
  EXPECT_TRUE(opt.plan->Equals(*KnowsEdgesPlan()));
}

TEST_F(OptimizerTest, ProjectAllCollapsesToPathSubtree) {
  PlanPtr plan = PlanNode::Project(
      {std::nullopt, std::nullopt, std::nullopt},
      PlanNode::OrderBy(OrderKey::kA,
                        PlanNode::GroupBy(GroupKey::kSTL, KnowsEdgesPlan())));
  OptimizeResult opt = Optimize(plan);
  EXPECT_TRUE(Applied(opt, "project-all"));
  EXPECT_TRUE(opt.plan->Equals(*KnowsEdgesPlan()));
}

// ---------------------------------------------------------------------------
// ϕWalk → ϕShortest family.
// ---------------------------------------------------------------------------
TEST_F(OptimizerTest, AnyShortestRewriteTerminatesDivergingPlan) {
  // ANY SHORTEST WALK Knows+ — ϕWalk diverges on Figure 1's Knows cycle;
  // after the rewrite the plan terminates and returns one shortest walk
  // per endpoint pair.
  PlanPtr walk_plan = PlanNode::Project(
      {std::nullopt, std::nullopt, 1},
      PlanNode::OrderBy(
          OrderKey::kA,
          PlanNode::GroupBy(GroupKey::kST,
                            PlanNode::Recursive(PathSemantics::kWalk,
                                                KnowsEdgesPlan()))));
  EvalOptions tight;
  tight.limits.max_path_length = 32;
  tight.limits.truncate = false;
  EXPECT_TRUE(
      Evaluate(g_, walk_plan, tight).status().IsResourceExhausted());

  OptimizeResult opt = Optimize(walk_plan);
  EXPECT_TRUE(Applied(opt, "any-shortest"));
  auto r = Evaluate(g_, opt.plan, tight);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 9u);  // one shortest walk per reachable pair
  for (const Path& p : *r) {
    EXPECT_TRUE(p.IsTrail());  // shortest walks never repeat edges
  }
}

TEST_F(OptimizerTest, AnyShortestRewriteThroughEndpointSelects) {
  // The regex compiler puts endpoint σ between γST and ϕ; endpoint-only
  // conditions commute with ST-partitions, so the rewrite still fires.
  PlanPtr plan = PlanNode::Project(
      {std::nullopt, std::nullopt, 1},
      PlanNode::OrderBy(
          OrderKey::kA,
          PlanNode::GroupBy(
              GroupKey::kST,
              PlanNode::Select(
                  FirstPropEq("name", Value("Moe")),
                  PlanNode::Recursive(PathSemantics::kWalk,
                                      KnowsEdgesPlan())))));
  OptimizeResult opt = Optimize(plan);
  EXPECT_TRUE(Applied(opt, "any-shortest"));
  EvalOptions tight;
  tight.limits.max_path_length = 32;
  auto r = Evaluate(g_, opt.plan, tight);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);  // Moe reaches n2, n3, n4

  // A non-endpoint σ (len()) must block the rewrite: dropping longer
  // walks could change which paths satisfy it.
  PlanPtr blocked = PlanNode::Project(
      {std::nullopt, std::nullopt, 1},
      PlanNode::OrderBy(
          OrderKey::kA,
          PlanNode::GroupBy(
              GroupKey::kST,
              PlanNode::Select(LenEq(3),
                               PlanNode::Recursive(PathSemantics::kWalk,
                                                   KnowsEdgesPlan())))));
  OptimizeResult not_rewritten = Optimize(blocked);
  EXPECT_FALSE(Applied(not_rewritten, "any-shortest"));
}

TEST_F(OptimizerTest, AnyShortestRewriteIsExactOnTerminatingInputs) {
  // On an acyclic graph both plans terminate; results must be identical.
  PropertyGraph chain = MakeChainGraph(7);
  PlanPtr make[2];
  PathSemantics sems[2] = {PathSemantics::kWalk, PathSemantics::kShortest};
  for (int i = 0; i < 2; ++i) {
    make[i] = PlanNode::Project(
        {std::nullopt, std::nullopt, 1},
        PlanNode::OrderBy(
            OrderKey::kA,
            PlanNode::GroupBy(
                GroupKey::kST,
                PlanNode::Recursive(sems[i], PlanNode::EdgesScan()))));
  }
  OptimizeResult opt = Optimize(make[0]);
  EXPECT_TRUE(opt.plan->Equals(*make[1])) << opt.plan->ToTreeString();
  auto walk = Evaluate(chain, make[0]);
  auto shortest = Evaluate(chain, make[1]);
  ASSERT_TRUE(walk.ok() && shortest.ok());
  EXPECT_EQ(*walk, *shortest);
}

TEST_F(OptimizerTest, AllShortestRewrite) {
  PropertyGraph diamonds = MakeDiamondChainGraph(3);
  PlanPtr walk_plan = PlanNode::Project(
      {std::nullopt, 1, std::nullopt},
      PlanNode::OrderBy(
          OrderKey::kG,
          PlanNode::GroupBy(GroupKey::kSTL,
                            PlanNode::Recursive(PathSemantics::kWalk,
                                                PlanNode::EdgesScan()))));
  OptimizeResult opt = Optimize(walk_plan);
  EXPECT_TRUE(Applied(opt, "any-shortest"));
  auto before = Evaluate(diamonds, walk_plan);  // DAG: walk terminates
  auto after = Evaluate(diamonds, opt.plan);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);
}

TEST_F(OptimizerTest, GlobalShortestRewriteExactWhenOneGroup) {
  // §7.3's π(1,1,*)(τG(γL(ϕWalk(X)))): with #g = 1 the rewrite is exact.
  PropertyGraph grid = MakeGridGraph(3, 3, "E");
  PlanPtr walk_plan = PlanNode::Project(
      {1, 1, std::nullopt},
      PlanNode::OrderBy(
          OrderKey::kG,
          PlanNode::GroupBy(GroupKey::kL,
                            PlanNode::Recursive(PathSemantics::kWalk,
                                                PlanNode::EdgesScan()))));
  OptimizeResult opt = Optimize(walk_plan);
  EXPECT_TRUE(Applied(opt, "global-shortest"));
  auto before = Evaluate(grid, walk_plan);
  auto after = Evaluate(grid, opt.plan);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);
}

TEST_F(OptimizerTest, WalkRescueIsGated) {
  // #g = 2 makes the rewrite semantics-changing; it must not fire unless
  // enable_walk_rescue is set.
  PlanPtr plan = PlanNode::Project(
      {1, 2, std::nullopt},
      PlanNode::OrderBy(
          OrderKey::kG,
          PlanNode::GroupBy(GroupKey::kL,
                            PlanNode::Recursive(PathSemantics::kWalk,
                                                KnowsEdgesPlan()))));
  OptimizeResult no_rescue = Optimize(plan);
  EXPECT_FALSE(Applied(no_rescue, "walk-rescue"));
  EXPECT_TRUE(no_rescue.plan->Equals(*plan));

  OptimizerOptions opts;
  opts.enable_walk_rescue = true;
  OptimizeResult rescued = Optimize(plan, opts);
  EXPECT_TRUE(Applied(rescued, "walk-rescue"));
  // The rescued plan terminates where the original diverges.
  EvalOptions tight;
  tight.limits.max_path_length = 32;
  EXPECT_TRUE(Evaluate(g_, plan, tight).status().IsResourceExhausted());
  EXPECT_TRUE(Evaluate(g_, rescued.plan, tight).ok());
}

TEST_F(OptimizerTest, RulesCanBeDisabled) {
  OptimizerOptions off;
  off.select_merge = off.select_pushdown = off.orderby_simplify = false;
  off.union_dedup = off.project_all = off.any_shortest = false;
  PlanPtr plan = PlanNode::Select(
      FirstPropEq("name", Value("Moe")),
      PlanNode::Join(KnowsEdgesPlan(), KnowsEdgesPlan()));
  OptimizeResult opt = Optimize(plan, off);
  EXPECT_TRUE(opt.applied.empty());
  EXPECT_TRUE(opt.plan->Equals(*plan));
}

// ---------------------------------------------------------------------------
// Property: optimization preserves results on random graphs.
// ---------------------------------------------------------------------------
TEST(OptimizerPropertyTest, OptimizedPlansPreserveResults) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    PropertyGraph g = MakeRandomGraph(8, 14, {"a", "b"}, seed);
    auto knows_a =
        PlanNode::Select(EdgeLabelEq(1, "a"), PlanNode::EdgesScan());
    auto knows_b =
        PlanNode::Select(EdgeLabelEq(1, "b"), PlanNode::EdgesScan());
    std::vector<PlanPtr> plans = {
        PlanNode::Select(NodePropEq(1, "id", Value(0)),
                         PlanNode::Join(knows_a, knows_b)),
        PlanNode::Select(
            NodePropEq(1, "id", Value(1)),
            PlanNode::Union(knows_a, PlanNode::Join(knows_a, knows_a))),
        PlanNode::Project(
            {std::nullopt, std::nullopt, 1},
            PlanNode::OrderBy(
                OrderKey::kPGA,
                PlanNode::GroupBy(
                    GroupKey::kST,
                    PlanNode::Recursive(PathSemantics::kTrail, knows_a)))),
        PlanNode::Project(
            {std::nullopt, std::nullopt, std::nullopt},
            PlanNode::GroupBy(
                GroupKey::kSL,
                PlanNode::Recursive(PathSemantics::kSimple, knows_b))),
    };
    for (size_t i = 0; i < plans.size(); ++i) {
      auto before = Evaluate(g, plans[i]);
      auto after = Evaluate(g, Optimize(plans[i]).plan);
      ASSERT_TRUE(before.ok() && after.ok()) << "seed " << seed;
      EXPECT_EQ(*before, *after) << "seed " << seed << " plan " << i;
    }
  }
}

}  // namespace
}  // namespace pathalg
