// Unit tests for the live-mutation subsystem's building blocks: the
// mutation grammar (parse/format round trip), DeltaState validation and
// cascade semantics, the fsync'd journal (round trip, torn tails, stale
// binding), the overlay materialization against its executable spec, and
// LiveGraph recovery — including the kill-and-recover contract that a
// reopened graph reproduces the pre-crash version id exactly.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "mutation/delta_log.h"
#include "mutation/live_graph.h"
#include "mutation/overlay.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace pathalg {
namespace mutation {
namespace {

std::string TempPath(const std::string& stem) {
  return ::testing::TempDir() + "pathalg_mutation_test_" + stem;
}

std::shared_ptr<const PropertyGraph> SmallGraph() {
  GraphBuilder b;
  NodeId n1 = b.AddNamedNode("n1", "person", {{"age", Value(30)}});
  NodeId n2 = b.AddNamedNode("n2", "person");
  NodeId n3 = b.AddNamedNode("n3", "city", {{"pop", Value(1000)}});
  EXPECT_TRUE(b.AddNamedEdge("e1", n1, n2, "knows").ok());
  EXPECT_TRUE(b.AddNamedEdge("e2", n2, n3, "lives_in").ok());
  EXPECT_TRUE(b.AddNamedEdge("e3", n1, n3, "lives_in",
                             {{"since", Value(2020)}})
                  .ok());
  return std::make_shared<const PropertyGraph>(b.Build());
}

DeltaRecord MustParse(const std::string& text) {
  Result<DeltaRecord> rec = ParseMutationCommand(text);
  EXPECT_TRUE(rec.ok()) << text << ": " << rec.status().ToString();
  return rec.ok() ? *rec : DeltaRecord{};
}

TEST(MutationGrammar, ParsesEveryOp) {
  DeltaRecord rec = MustParse("add-node n9 label=person age=31 tag=x");
  EXPECT_EQ(rec.op, DeltaOp::kAddNode);
  EXPECT_EQ(rec.name, "n9");
  EXPECT_EQ(rec.label, "person");
  ASSERT_EQ(rec.props.size(), 2u);
  EXPECT_EQ(rec.props[0].first, "age");
  EXPECT_EQ(rec.props[0].second, Value(31));
  EXPECT_EQ(rec.props[1].second, Value("x"));

  rec = MustParse("add-edge n1 n2 label=knows name=e9 w=1.5");
  EXPECT_EQ(rec.op, DeltaOp::kAddEdge);
  EXPECT_EQ(rec.src, "n1");
  EXPECT_EQ(rec.dst, "n2");
  EXPECT_EQ(rec.name, "e9");
  ASSERT_EQ(rec.props.size(), 1u);
  EXPECT_EQ(rec.props[0].second, Value(1.5));

  rec = MustParse("rm-node n1");
  EXPECT_EQ(rec.op, DeltaOp::kRemoveNode);
  EXPECT_EQ(rec.name, "n1");

  rec = MustParse("rm-edge e2");
  EXPECT_EQ(rec.op, DeltaOp::kRemoveEdge);
  EXPECT_EQ(rec.name, "e2");
}

TEST(MutationGrammar, ValueTyping) {
  DeltaRecord rec = MustParse(
      "add-node x i=42 d=2.5 t=true f=false n=null s=hello neg=-7 e=");
  ASSERT_EQ(rec.props.size(), 8u);
  EXPECT_TRUE(rec.props[0].second.is_int());
  EXPECT_TRUE(rec.props[1].second.is_double());
  EXPECT_TRUE(rec.props[2].second.is_bool());
  EXPECT_TRUE(rec.props[3].second.is_bool());
  EXPECT_TRUE(rec.props[4].second.is_null());
  EXPECT_TRUE(rec.props[5].second.is_string());
  EXPECT_EQ(rec.props[6].first, "neg");
  EXPECT_EQ(rec.props[6].second, Value(int64_t{-7}));
  // "e=" parses as the empty string (not dropped).
  // Index 6 above is neg; find e:
  bool saw_empty = false;
  for (const auto& [k, v] : rec.props) {
    if (k == "e") {
      saw_empty = true;
      EXPECT_EQ(v, Value(std::string()));
    }
  }
  EXPECT_TRUE(saw_empty);
}

TEST(MutationGrammar, FormatParseRoundTrip) {
  const std::vector<std::string> cases = {
      "add-node n9 label=person age=31 score=1.5 ok=true note=null",
      "add-node",
      "add-edge n1 n2 label=knows name=e9 w=-3",
      "add-edge a b",
      "rm-node n1",
      "rm-edge e2",
      // Names containing '=' must re-emit through the name= form, or the
      // re-parse reads them as properties.
      "add-node name=a=b label=x",
      "add-edge n1 n2 name=w=1",
      "rm-node a=b",
  };
  for (const std::string& text : cases) {
    DeltaRecord rec = MustParse(text);
    std::string formatted = FormatMutation(rec);
    DeltaRecord again = MustParse(formatted);
    EXPECT_EQ(rec, again) << text << " -> " << formatted;
  }
}

TEST(MutationGrammar, Rejections) {
  EXPECT_FALSE(ParseMutationCommand("").ok());
  EXPECT_FALSE(ParseMutationCommand("drop-table users").ok());
  EXPECT_FALSE(ParseMutationCommand("add-edge n1").ok());
  EXPECT_FALSE(ParseMutationCommand("add-edge n1 n2 n3").ok());
  EXPECT_FALSE(ParseMutationCommand("rm-node").ok());
  EXPECT_FALSE(ParseMutationCommand("rm-node a b").ok());
  EXPECT_FALSE(ParseMutationCommand("add-node a b").ok());
  EXPECT_FALSE(ParseMutationCommand("add-node a name=b").ok());
  EXPECT_FALSE(ParseMutationCommand("add-node x label=a label=b").ok());
}

TEST(DeltaStateTest, AddAndRemoveWithCascade) {
  DeltaState state(SmallGraph());
  EXPECT_EQ(state.live_node_count(), 3u);
  EXPECT_EQ(state.live_edge_count(), 3u);

  DeltaRecord rec = MustParse("add-node n4 label=person");
  ASSERT_TRUE(state.Apply(&rec).ok());
  rec = MustParse("add-edge n4 n1 label=knows");
  ASSERT_TRUE(state.Apply(&rec).ok());
  EXPECT_EQ(rec.name, "e4") << "auto edge name is insertion-order";
  EXPECT_EQ(state.live_node_count(), 4u);
  EXPECT_EQ(state.live_edge_count(), 4u);

  // Removing n1 cascades to e1/e3 (base) and e4 (added).
  rec = MustParse("rm-node n1");
  ASSERT_TRUE(state.Apply(&rec).ok());
  EXPECT_EQ(state.live_node_count(), 3u);
  EXPECT_EQ(state.live_edge_count(), 1u);
  EXPECT_FALSE(state.LookupEdge("e1").ok());
  EXPECT_FALSE(state.LookupEdge("e3").ok());
  EXPECT_FALSE(state.LookupEdge("e4").ok());
  EXPECT_TRUE(state.LookupEdge("e2").ok());
}

TEST(DeltaStateTest, ValidationErrors) {
  DeltaState state(SmallGraph());
  DeltaRecord rec = MustParse("add-node n1");
  EXPECT_TRUE(state.Apply(&rec).IsInvalidArgument()) << "duplicate node";
  rec = MustParse("add-edge n1 nope");
  EXPECT_TRUE(state.Apply(&rec).IsNotFound()) << "unknown endpoint";
  rec = MustParse("rm-node ghost");
  EXPECT_TRUE(state.Apply(&rec).IsNotFound());
  rec = MustParse("rm-edge ghost");
  EXPECT_TRUE(state.Apply(&rec).IsNotFound());
  rec = MustParse("add-edge n1 n2 name=e1");
  EXPECT_TRUE(state.Apply(&rec).IsInvalidArgument()) << "duplicate edge name";
  EXPECT_TRUE(state.empty()) << "failed applies must not journal";

  // A removed name can be re-used: the merged graph never sees both.
  rec = MustParse("rm-node n1");
  ASSERT_TRUE(state.Apply(&rec).ok());
  rec = MustParse("add-node n1 label=robot");
  EXPECT_TRUE(state.Apply(&rec).ok());
}

TEST(DeltaStateTest, AutoNamesFollowInsertionOrder) {
  DeltaState state(SmallGraph());
  DeltaRecord rec = MustParse("add-node");
  ASSERT_TRUE(state.Apply(&rec).ok());
  EXPECT_EQ(rec.name, "n4");
  rec = MustParse("rm-node n4");
  ASSERT_TRUE(state.Apply(&rec).ok());
  rec = MustParse("add-node");
  ASSERT_TRUE(state.Apply(&rec).ok());
  EXPECT_EQ(rec.name, "n5") << "ids are never reused, matching GraphBuilder";
}

TEST(OverlayTest, ApplyMatchesRebuildByteForByte) {
  auto base = SmallGraph();
  DeltaState state(base);
  for (const char* m : {
           "add-node n4 label=person age=41",
           "add-edge n4 n2 label=knows name=k1 w=2",
           "rm-edge e1",
           "rm-node n3",
           "add-node m label=metro pop=9000000",
           "add-edge n4 m label=lives_in",
       }) {
    DeltaRecord rec = MustParse(m);
    ASSERT_TRUE(state.Apply(&rec).ok()) << m;
  }
  PropertyGraph merged = DeltaOverlayGraph::Apply(state);
  PropertyGraph rebuilt = DeltaOverlayGraph::RebuildReference(state);
  EXPECT_EQ(storage::SnapshotWriter::Serialize(merged),
            storage::SnapshotWriter::Serialize(rebuilt));
  EXPECT_EQ(merged.num_nodes(), state.live_node_count());
  EXPECT_EQ(merged.num_edges(), state.live_edge_count());
  // Spot-check the merged surface.
  EXPECT_NE(merged.FindNodeByName("n4"), kInvalidId);
  EXPECT_EQ(merged.FindNodeByName("n3"), kInvalidId);
  NodeId n4 = merged.FindNodeByName("n4");
  const Value* age = merged.NodeProperty(n4, "age");
  ASSERT_NE(age, nullptr);
  EXPECT_EQ(*age, Value(41));
}

TEST(OverlayTest, HistoryIndependentVersionIds) {
  // Adding and removing an object leaves the version id exactly where it
  // started — ids are content-addressed, not history stamps.
  auto base = SmallGraph();
  uint64_t v0 = storage::SnapshotWriter::VersionId(*base);
  DeltaState state(base);
  DeltaRecord rec = MustParse("add-node scratch label=tmp");
  ASSERT_TRUE(state.Apply(&rec).ok());
  rec = MustParse("rm-node scratch");
  ASSERT_TRUE(state.Apply(&rec).ok());
  PropertyGraph merged = DeltaOverlayGraph::Apply(state);
  EXPECT_EQ(storage::SnapshotWriter::VersionId(merged), v0);
}

TEST(JournalTest, RoundTrip) {
  const std::string path = TempPath("roundtrip.journal");
  std::remove(path.c_str());
  std::vector<DeltaRecord> recs = {
      MustParse("add-node n4 label=person age=31 score=0.5"),
      MustParse("add-edge n4 n1 label=knows name=e9"),
      MustParse("rm-edge e1"),
      MustParse("rm-node n2"),
  };
  {
    Result<std::unique_ptr<DeltaJournal>> j =
        DeltaJournal::OpenForAppend(path, 0xabcdef);
    ASSERT_TRUE(j.ok()) << j.status().ToString();
    for (const DeltaRecord& r : recs) ASSERT_TRUE((*j)->Append(r).ok());
  }
  Result<DeltaJournal::Contents> read = DeltaJournal::ReadAll(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->base_version, 0xabcdefu);
  EXPECT_EQ(read->dropped_bytes, 0u);
  ASSERT_EQ(read->records.size(), recs.size());
  for (size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(read->records[i], recs[i]) << i;
  }
}

TEST(JournalTest, TornTailIsDroppedAndTruncatedOnReopen) {
  const std::string path = TempPath("torn.journal");
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<DeltaJournal>> j =
        DeltaJournal::OpenForAppend(path, 7);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE((*j)->Append(MustParse("add-node a")).ok());
    ASSERT_TRUE((*j)->Append(MustParse("add-node b")).ok());
  }
  // Simulate a crash mid-append: chop bytes off the last frame.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 5));
  }
  Result<DeltaJournal::Contents> read = DeltaJournal::ReadAll(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u) << "torn second record dropped";
  EXPECT_EQ(read->records[0].name, "a");
  EXPECT_GT(read->dropped_bytes, 0u);

  // Reopen truncates the torn tail, then appends cleanly after it.
  Result<std::unique_ptr<DeltaJournal>> j =
      DeltaJournal::OpenForAppend(path, 7);
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  ASSERT_TRUE((*j)->Append(MustParse("add-node c")).ok());
  read = DeltaJournal::ReadAll(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[1].name, "c");
  EXPECT_EQ(read->dropped_bytes, 0u);
}

TEST(JournalTest, RejectsWrongBaseVersionAndGarbage) {
  const std::string path = TempPath("wrongbase.journal");
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<DeltaJournal>> j =
        DeltaJournal::OpenForAppend(path, 1);
    ASSERT_TRUE(j.ok());
  }
  EXPECT_FALSE(DeltaJournal::OpenForAppend(path, 2).ok());

  const std::string garbage = TempPath("garbage.journal");
  std::ofstream(garbage, std::ios::binary) << "this is not a journal at all";
  EXPECT_FALSE(DeltaJournal::ReadAll(garbage).ok());
  EXPECT_FALSE(DeltaJournal::ReadAll(TempPath("missing.journal")).ok());
}

struct LivePaths {
  std::string journal;
  std::string base;
};

LivePaths FreshLivePaths(const std::string& stem) {
  LivePaths p{TempPath(stem + ".journal"), TempPath(stem + ".base.snap")};
  std::remove(p.journal.c_str());
  std::remove((p.journal + ".next").c_str());
  std::remove((p.journal + ".stale").c_str());
  std::remove(p.base.c_str());
  return p;
}

LiveGraphOptions LiveOpts(const LivePaths& p) {
  LiveGraphOptions o;
  o.journal_path = p.journal;
  o.base_snapshot_path = p.base;
  return o;
}

TEST(LiveGraphTest, MutateAndVersionLifecycle) {
  LivePaths paths = FreshLivePaths("lifecycle");
  Result<std::shared_ptr<LiveGraph>> lg =
      LiveGraph::Open(SmallGraph(), LiveOpts(paths));
  ASSERT_TRUE(lg.ok()) << lg.status().ToString();
  LiveGraph& live = **lg;

  uint64_t v0 = live.VersionId();
  std::shared_ptr<const PropertyGraph> g0 = live.Current();
  EXPECT_EQ(g0.get(), live.Current().get()) << "empty delta aliases the base";

  DeltaRecord resolved;
  ASSERT_TRUE(
      live.Mutate(MustParse("add-node n4 label=person"), &resolved).ok());
  EXPECT_EQ(resolved.name, "n4");
  std::shared_ptr<const PropertyGraph> g1 = live.Current();
  EXPECT_NE(g0.get(), g1.get());
  EXPECT_EQ(g0->num_nodes(), 3u) << "pinned version is untouched";
  EXPECT_EQ(g1->num_nodes(), 4u);
  uint64_t v1 = live.VersionId();
  EXPECT_NE(v0, v1);
  EXPECT_EQ(g1.get(), live.Current().get()) << "materialized once per delta";

  LiveGraphCounters c = live.counters();
  EXPECT_EQ(c.mutations_applied, 1u);
  EXPECT_EQ(c.pending, 1u);
  EXPECT_EQ(c.materializations, 1u);
}

TEST(LiveGraphTest, RecoveryReplaysJournalToSameVersion) {
  LivePaths paths = FreshLivePaths("recover");
  uint64_t pre_crash_version;
  {
    Result<std::shared_ptr<LiveGraph>> lg =
        LiveGraph::Open(SmallGraph(), LiveOpts(paths));
    ASSERT_TRUE(lg.ok());
    ASSERT_TRUE((*lg)->Mutate(MustParse("add-node n4 label=person")).ok());
    ASSERT_TRUE((*lg)->Mutate(MustParse("add-edge n4 n1 label=knows")).ok());
    ASSERT_TRUE((*lg)->Mutate(MustParse("rm-edge e2")).ok());
    pre_crash_version = (*lg)->VersionId();
    // "Crash": drop the LiveGraph without compaction; only the journal
    // survives.
  }
  Result<std::shared_ptr<LiveGraph>> lg =
      LiveGraph::Open(SmallGraph(), LiveOpts(paths));
  ASSERT_TRUE(lg.ok()) << lg.status().ToString();
  EXPECT_EQ((*lg)->counters().recovered_records, 3u);
  EXPECT_EQ((*lg)->VersionId(), pre_crash_version)
      << "journal replay over the same base must reproduce the version id";
}

TEST(LiveGraphTest, CompactionPublishesSnapshotAndResetsJournal) {
  LivePaths paths = FreshLivePaths("compact");
  Result<std::shared_ptr<LiveGraph>> lg =
      LiveGraph::Open(SmallGraph(), LiveOpts(paths));
  ASSERT_TRUE(lg.ok());
  ASSERT_TRUE((*lg)->Mutate(MustParse("add-node n4 label=person")).ok());
  ASSERT_TRUE((*lg)->Mutate(MustParse("add-edge n4 n2 label=knows")).ok());
  uint64_t v_before = (*lg)->VersionId();
  ASSERT_TRUE((*lg)->Compact().ok());
  EXPECT_EQ((*lg)->VersionId(), v_before)
      << "compaction changes representation, never content";
  LiveGraphCounters c = (*lg)->counters();
  EXPECT_EQ(c.compactions, 1u);
  EXPECT_EQ(c.pending, 0u);

  // The published snapshot is the new base, chained to the old version.
  Result<storage::SnapshotReader::Info> info =
      storage::SnapshotReader::Probe(paths.base);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version_id, v_before);
  EXPECT_NE(info->parent_version, 0u);
  // Journal reset: bound to the new version, no records.
  Result<DeltaJournal::Contents> j = DeltaJournal::ReadAll(paths.journal);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->base_version, v_before);
  EXPECT_TRUE(j->records.empty());

  // Reopen from disk: base snapshot + empty journal → same version.
  Result<PropertyGraph> reopened = storage::SnapshotReader::Open(paths.base);
  ASSERT_TRUE(reopened.ok());
  Result<std::shared_ptr<LiveGraph>> again = LiveGraph::Open(
      std::make_shared<const PropertyGraph>(std::move(*reopened)),
      LiveOpts(paths), info->version_id);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->VersionId(), v_before);
  EXPECT_EQ((*again)->counters().recovered_records, 0u);
}

TEST(LiveGraphTest, MismatchedJournalIsQuarantinedNotDeleted) {
  LivePaths paths = FreshLivePaths("stale");
  {
    Result<std::shared_ptr<LiveGraph>> lg =
        LiveGraph::Open(SmallGraph(), LiveOpts(paths));
    ASSERT_TRUE(lg.ok());
    ASSERT_TRUE((*lg)->Mutate(MustParse("add-node n4")).ok());
  }
  // Reopen over a *different* base: the journal must not replay.
  GraphBuilder b;
  b.AddNamedNode("only", "alone");
  Result<std::shared_ptr<LiveGraph>> lg = LiveGraph::Open(
      std::make_shared<const PropertyGraph>(b.Build()), LiveOpts(paths));
  ASSERT_TRUE(lg.ok()) << lg.status().ToString();
  EXPECT_EQ((*lg)->counters().recovered_records, 0u);
  EXPECT_EQ((*lg)->counters().stale_journals, 1u);
  EXPECT_EQ((*lg)->Current()->num_nodes(), 1u);
  std::ifstream stale(paths.journal + ".stale", std::ios::binary);
  EXPECT_TRUE(stale.good()) << "quarantined aside, never silently deleted";
}

TEST(LiveGraphTest, ThresholdCompactionRuns) {
  LivePaths paths = FreshLivePaths("threshold");
  LiveGraphOptions opts = LiveOpts(paths);
  opts.compact_threshold = 3;
  Result<std::shared_ptr<LiveGraph>> lg =
      LiveGraph::Open(SmallGraph(), opts);
  ASSERT_TRUE(lg.ok());
  ASSERT_TRUE((*lg)->Mutate(MustParse("add-node a")).ok());
  ASSERT_TRUE((*lg)->Mutate(MustParse("add-node b")).ok());
  EXPECT_EQ((*lg)->counters().compactions, 0u);
  ASSERT_TRUE((*lg)->Mutate(MustParse("add-node c")).ok());
  LiveGraphCounters c = (*lg)->counters();
  EXPECT_EQ(c.compactions, 1u);
  EXPECT_EQ(c.pending, 0u);
}

}  // namespace
}  // namespace mutation
}  // namespace pathalg
