// Robustness / failure-injection tests: malformed and truncated query
// strings never crash the parser; evaluation always respects budgets; the
// end-to-end facade degrades to clean Status errors on every bad input we
// can construct.

#include <gtest/gtest.h>

#include <random>

#include "algebra/recursive.h"
#include "gql/query.h"
#include "path/path_ops.h"
#include "regex/parser.h"
#include "workload/figure1.h"
#include "workload/generators.h"

namespace pathalg {
namespace {

const char* kSeedQueries[] = {
    "MATCH ALL TRAIL p = (x)-[:Knows+]->(y)",
    "MATCH ANY SHORTEST WALK p = (?x {name:\"Moe\"})-[:Knows+]->(?y)",
    "MATCH SHORTEST 2 GROUP SIMPLE p = (x)-[(:a/:b)*|:c?]->(y) "
    "WHERE len() >= 2 AND first.name CONTAINS \"o\"",
    "MATCH ALL PARTITIONS 2 GROUPS 1 PATHS ACYCLIC p = (?x:Person)"
    "-[:Knows+]->(?y) GROUP BY SOURCE TARGET ORDER BY PARTITION PATH",
};

TEST(RobustnessTest, TruncatedQueriesNeverCrash) {
  // Every prefix of every seed query either parses or returns ParseError.
  for (const char* seed : kSeedQueries) {
    std::string query(seed);
    for (size_t len = 0; len <= query.size(); ++len) {
      auto result = ParseQuery(query.substr(0, len));
      if (!result.ok()) {
        EXPECT_TRUE(result.status().IsParseError())
            << "prefix " << len << " of: " << seed << " -> "
            << result.status().ToString();
      }
    }
  }
}

TEST(RobustnessTest, MutatedQueriesNeverCrash) {
  // Random single-character mutations: parse either succeeds or fails
  // cleanly; successful parses must evaluate (with budgets) without UB.
  PropertyGraph g = MakeFigure1Graph();
  std::mt19937_64 rng(99);
  const std::string charset =
      "abcXYZ0123456789()[]{}<>=!?*+|/:.,\"' _-";
  int parsed_ok = 0;
  for (const char* seed : kSeedQueries) {
    for (int trial = 0; trial < 200; ++trial) {
      std::string query(seed);
      size_t pos = rng() % query.size();
      query[pos] = charset[rng() % charset.size()];
      auto parsed = ParseQuery(query);
      if (!parsed.ok()) {
        EXPECT_TRUE(parsed.status().IsParseError()) << query;
        continue;
      }
      ++parsed_ok;
      QueryOptions opts;
      opts.eval.limits.max_path_length = 8;
      opts.eval.limits.max_paths = 10'000;
      opts.eval.limits.truncate = true;
      auto built = Query::Parse(query);
      if (!built.ok()) continue;
      auto result = built->Execute(g, opts);
      // Any status is fine; the point is no crash / no hang.
      (void)result;
    }
  }
  // Sanity: some mutations must still parse (mutating a node-variable
  // letter, whitespace, etc.), or the test is vacuous.
  EXPECT_GT(parsed_ok, 10);
}

TEST(RobustnessTest, RegexFuzzPrefixes) {
  for (std::string seed :
       {"(:Knows+)|(:Likes/:Has_creator)*", ":a/:b/:c|:d+", "((:x)?)*"}) {
    for (size_t len = 0; len <= seed.size(); ++len) {
      auto r = ParseRegex(seed.substr(0, len));
      if (!r.ok()) {
        EXPECT_TRUE(r.status().IsParseError());
      }
    }
  }
}

TEST(RobustnessTest, BudgetsHoldOnAdversarialGraphs) {
  // A dense cyclic graph: every budget dimension must bind cleanly.
  PropertyGraph g = MakeRandomGraph(12, 60, {"a"}, 5);
  PathSet edges = EdgesOf(g);
  {
    EvalLimits limits;
    limits.max_paths = 100;
    limits.truncate = false;
    auto r = Recursive(edges, PathSemantics::kWalk, limits);
    EXPECT_TRUE(r.status().IsResourceExhausted());
  }
  {
    EvalLimits limits;
    limits.max_paths = 100;
    limits.truncate = true;
    auto r = Recursive(edges, PathSemantics::kWalk, limits);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r->size(), 100u);
  }
  {
    EvalLimits limits;
    limits.max_path_length = 2;
    limits.truncate = true;
    auto r = Recursive(edges, PathSemantics::kTrail, limits);
    ASSERT_TRUE(r.ok());
    for (const Path& p : *r) EXPECT_LE(p.Len(), 2u);
  }
}

TEST(RobustnessTest, EmptyGraphEverywhere) {
  PropertyGraph empty;  // zero nodes, zero edges
  EXPECT_TRUE(EdgesOf(empty).empty());
  EXPECT_TRUE(NodesOf(empty).empty());
  auto r = ExecuteQuery(empty, "MATCH ALL TRAIL p = (x)-[:Knows+]->(y)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  auto seq = ExecuteQuery(
      empty, "MATCH ALL PARTITIONS ALL GROUPS ALL PATHS WALK "
             "p = (x)-[:a*]->(y) GROUP BY SOURCE ORDER BY PATH");
  ASSERT_TRUE(seq.ok());
  EXPECT_TRUE(seq->empty());
}

TEST(RobustnessTest, SingleNodeGraph) {
  GraphBuilder b;
  NodeId n = b.AddNode("Only", {{"name", Value("solo")}});
  PropertyGraph g = b.Build();
  auto star = ExecuteQuery(g, "MATCH ALL WALK p = (x)-[:a*]->(y)");
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(star->size(), 1u);  // the zero-length path (n)
  EXPECT_TRUE(star->Contains(Path::SingleNode(n)));
  auto plus = ExecuteQuery(g, "MATCH ALL WALK p = (x)-[:a+]->(y)");
  ASSERT_TRUE(plus.ok());
  EXPECT_TRUE(plus->empty());
}

TEST(RobustnessTest, SelfLoopGraph) {
  GraphBuilder b;
  NodeId n = b.AddNode("N");
  auto e = b.AddEdge(n, n, "a");
  ASSERT_TRUE(e.ok());
  PropertyGraph g = b.Build();
  // A self-loop: trail can use the edge once; acyclic cannot use it at
  // all ((n,e,n) repeats n); simple allows the closed loop; shortest
  // keeps it as the minimal n→n path of positive length.
  auto trail = Recursive(EdgesOf(g), PathSemantics::kTrail);
  ASSERT_TRUE(trail.ok());
  EXPECT_EQ(trail->size(), 1u);
  auto acyclic = Recursive(EdgesOf(g), PathSemantics::kAcyclic);
  ASSERT_TRUE(acyclic.ok());
  EXPECT_TRUE(acyclic->empty());
  auto simple = Recursive(EdgesOf(g), PathSemantics::kSimple);
  ASSERT_TRUE(simple.ok());
  EXPECT_EQ(simple->size(), 1u);
  auto shortest = Recursive(EdgesOf(g), PathSemantics::kShortest);
  ASSERT_TRUE(shortest.ok());
  EXPECT_EQ(shortest->size(), 1u);
  // Walk diverges on the loop.
  auto walk = Recursive(EdgesOf(g), PathSemantics::kWalk,
                        {.max_path_length = 16});
  EXPECT_TRUE(walk.status().IsResourceExhausted());
}

TEST(RobustnessTest, ParallelEdges) {
  GraphBuilder b;
  NodeId u = b.AddNode("N");
  NodeId v = b.AddNode("N");
  auto e1 = b.AddEdge(u, v, "a");
  auto e2 = b.AddEdge(u, v, "a");
  ASSERT_TRUE(e1.ok() && e2.ok());
  PropertyGraph g = b.Build();
  // Both parallel edges are distinct paths; both are per-pair shortest.
  auto shortest = Recursive(EdgesOf(g), PathSemantics::kShortest);
  ASSERT_TRUE(shortest.ok());
  EXPECT_EQ(shortest->size(), 2u);
  // A trail may use both parallel edges? No — u→v→? has no way back.
  auto trail = Recursive(EdgesOf(g), PathSemantics::kTrail);
  ASSERT_TRUE(trail.ok());
  EXPECT_EQ(trail->size(), 2u);
}

}  // namespace
}  // namespace pathalg
