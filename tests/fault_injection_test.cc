// Tests for the seeded fault-injection substrate (common/fault_injection)
// and the degradation paths it exercises: every registered site, forced to
// fire, must yield a clean Status/ERR — never a crash, leak, or wedged
// worker — and the non-faulted surface must stay byte-identical once
// injection is disabled. The quarantine/rebuild path of the catalog's
// snapshot cache and the server's slow-client drop ride the same
// machinery. The suite runs under ASan/TSan in CI, which is what turns
// "returns cleanly" into "returns cleanly and leaks nothing".

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "engine/workload_file.h"
#include "server/graph_catalog.h"
#include "server/session.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

#ifdef __unix__
#include <dirent.h>

#include "server/line_client.h"
#include "server/tcp_server.h"
#endif

namespace pathalg {
namespace {

using server::GraphCatalog;
using server::GraphCatalogOptions;
using server::SessionManager;
using server::SessionManagerOptions;

std::string TempPath(const std::string& stem) {
  return ::testing::TempDir() + "pathalg_fault_test_" + stem;
}

/// Snapshot-cache dirs persist across test-binary runs (gtest's TempDir
/// is stable); tests that assert hit/miss/quarantine counters must start
/// from an empty dir or a previous run's cache file skews them.
void WipeDir(const std::string& dir) {
#ifdef __unix__
  if (DIR* d = opendir(dir.c_str())) {
    while (struct dirent* entry = readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      std::remove((dir + "/" + name).c_str());
    }
    closedir(d);
  }
#else
  (void)dir;
#endif
}

/// RAII: the injector is process-global, so every test that configures it
/// must leave it off for the next one.
struct FaultScope {
  explicit FaultScope(const std::string& spec) {
    const Status s = FaultInjector::Global().Configure(spec);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  ~FaultScope() { FaultInjector::Global().Disable(); }
};

// ---------------------------------------------------------------------------
// FaultInjector mechanics
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, OffByDefaultAndAfterDisable) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Disable();
  EXPECT_FALSE(fi.Enabled());
  for (int s = 0; s < kNumFaultSites; ++s) {
    EXPECT_FALSE(fi.ShouldFail(static_cast<FaultSite>(s)));
    EXPECT_EQ(fi.Injected(static_cast<FaultSite>(s)), 0u);
  }
  fi.Disable();  // zeroes the calls counters drawn above
}

TEST(FaultInjectorTest, ConfigureParsesSitesSeedAndWildcard) {
  {
    FaultScope scope("seed=42;snapshot-read=1");
    FaultInjector& fi = FaultInjector::Global();
    EXPECT_TRUE(fi.Enabled());
    EXPECT_TRUE(fi.ShouldFail(FaultSite::kSnapshotRead));
    EXPECT_FALSE(fi.ShouldFail(FaultSite::kCatalogLoad));
    EXPECT_EQ(fi.Calls(FaultSite::kSnapshotRead), 1u);
    EXPECT_EQ(fi.Injected(FaultSite::kSnapshotRead), 1u);
    EXPECT_EQ(fi.Injected(FaultSite::kCatalogLoad), 0u);
  }
  {
    FaultScope scope("seed=7;*=1");
    for (int s = 0; s < kNumFaultSites; ++s) {
      EXPECT_TRUE(FaultInjector::Global().ShouldFail(
          static_cast<FaultSite>(s)));
    }
  }
  EXPECT_FALSE(FaultInjector::Global().Enabled());
}

TEST(FaultInjectorTest, MalformedSpecsAreRejected) {
  FaultInjector& fi = FaultInjector::Global();
  EXPECT_FALSE(fi.Configure("seed").ok());
  EXPECT_FALSE(fi.Configure("no-such-site=1").ok());
  EXPECT_FALSE(fi.Configure("snapshot-read=banana").ok());
  EXPECT_FALSE(fi.Enabled());  // a rejected spec must not half-apply
}

TEST(FaultInjectorTest, FiringPatternIsASeededPureFunction) {
  // Same seed → the same subset of the first N ordinals fires; a
  // different seed → (almost surely) a different subset. This is what
  // makes a CI fault-sweep failure replayable from its seed.
  constexpr int kDraws = 64;
  auto draw = [](const std::string& spec) {
    FaultScope scope(spec);
    std::vector<bool> fired;
    for (int i = 0; i < kDraws; ++i) {
      fired.push_back(
          FaultInjector::Global().ShouldFail(FaultSite::kSocketWrite));
    }
    return fired;
  };
  const auto a = draw("seed=1;socket-write=3");
  const auto b = draw("seed=1;socket-write=3");
  const auto c = draw("seed=2;socket-write=3");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  int fired_count = 0;
  for (bool f : a) fired_count += f ? 1 : 0;
  EXPECT_GT(fired_count, 0);
  EXPECT_LT(fired_count, kDraws);
}

// ---------------------------------------------------------------------------
// Storage sites: snapshot-read, snapshot-mmap
// ---------------------------------------------------------------------------

/// Writes a real snapshot of a small generator graph, returning its path.
std::string WriteSnapshotFixture(const std::string& stem) {
  const std::string path = TempPath(stem);
  auto graph = engine::BuildWorkloadGraph("chain n=6 label=Knows");
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  const Status written = storage::SnapshotWriter::Write(*graph, path);
  EXPECT_TRUE(written.ok()) << written.ToString();
  return path;
}

TEST(FaultSiteTest, SnapshotReadFailsCleanAndRecovers) {
  const std::string path = WriteSnapshotFixture("read_site.snap");
  {
    FaultScope scope("seed=3;snapshot-read=1");
    auto r = storage::SnapshotReader::Open(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("injected fault"), std::string::npos)
        << r.status().ToString();
    EXPECT_GE(FaultInjector::Global().Injected(FaultSite::kSnapshotRead), 1u);
  }
  // Injection off: the same bytes read back fine — the fault left no
  // residue on the file or the reader.
  auto r = storage::SnapshotReader::Open(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_nodes(), 6u);
  std::remove(path.c_str());
}

TEST(FaultSiteTest, SnapshotMmapFailsCleanButMissingFileStaysNotFound) {
  const std::string path = WriteSnapshotFixture("mmap_site.snap");
  {
    FaultScope scope("seed=3;snapshot-mmap=1");
    auto r = storage::SnapshotReader::Open(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("injected fault"), std::string::npos);
    // The site models an I/O error on an *existing* file; a missing file
    // must still report NotFound (the catalog's normal cold-cache miss),
    // or injection would quarantine files that never existed.
    auto missing = storage::SnapshotReader::Open(TempPath("no_such.snap"));
    ASSERT_FALSE(missing.ok());
    EXPECT_TRUE(missing.status().IsNotFound())
        << missing.status().ToString();
  }
  auto r = storage::SnapshotReader::Open(path);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Catalog site + quarantine/rebuild degradation
// ---------------------------------------------------------------------------

TEST(FaultSiteTest, CatalogLoadFailsCleanAndIsRetryable) {
  GraphCatalog catalog;
  {
    FaultScope scope("seed=5;catalog-load=1");
    auto g = catalog.Get("figure1");
    ASSERT_FALSE(g.ok());
    EXPECT_NE(g.status().message().find("injected fault"), std::string::npos);
    EXPECT_EQ(catalog.counters().errors, 1u);
  }
  // Failed loads are not cached: the same spec succeeds once the fault
  // clears — the catalog degraded, it did not wedge.
  auto g = catalog.Get("figure1");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ((*g)->graph->num_nodes(), 7u);
}

TEST(FaultSiteTest, CorruptSnapshotCacheIsQuarantinedAndRebuilt) {
  const std::string dir = TempPath("quarantine_cache");
  WipeDir(dir);
  GraphCatalogOptions options;
  options.snapshot_dir = dir;
  const std::string spec = "chain n=9 label=Knows";

  // Populate the cache (built from the generator, then persisted).
  {
    GraphCatalog warm(options);
    auto g = warm.Get(spec);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    EXPECT_EQ(warm.counters().snapshot_misses, 1u);
  }
  // A fresh catalog with the cache file unreadable (injected I/O error on
  // every open, including the backoff retry) must quarantine the file and
  // rebuild from the generator spec: the session sees a slower load,
  // never a failure.
  {
    FaultScope scope("seed=11;snapshot-read=1");
    GraphCatalog cold(options);
    auto g = cold.Get(spec);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    EXPECT_EQ((*g)->graph->num_nodes(), 9u);
    const server::CatalogCounters c = cold.counters();
    EXPECT_EQ(c.quarantined_snapshots, 1u);
    EXPECT_EQ(c.snapshot_hits, 0u);
    EXPECT_EQ(c.snapshot_misses, 1u);  // quarantine degrades to a miss
  }
  // The rebuild re-persisted a fresh cache file; with the fault cleared
  // the next cold catalog mmaps it — full recovery, no residue.
  {
    GraphCatalog healed(options);
    auto g = healed.Get(spec);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    const server::CatalogCounters c = healed.counters();
    EXPECT_EQ(c.snapshot_hits, 1u);
    EXPECT_EQ(c.quarantined_snapshots, 0u);
  }
}

// ---------------------------------------------------------------------------
// Server sites: record-flush, socket-write
// ---------------------------------------------------------------------------

TEST(FaultSiteTest, RecordFlushFailsCleanWithoutWedgingTheSession) {
  GraphCatalog catalog;
  SessionManager manager(&catalog, {});
  auto session = manager.Open();
  ASSERT_TRUE(session.ok());
  const std::string path = TempPath("record_flush.gqlw");
  std::string out;
  (*session)->HandleLine("!timing off", &out);
  (*session)->HandleLine("!record " + path, &out);
  (*session)->HandleLine("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)", &out);
  out.clear();
  {
    FaultScope scope("seed=13;record-flush=1");
    (*session)->HandleLine("!record stop", &out);
    EXPECT_EQ(out, "ERR short write to workload file '" + path + "'\n");
    EXPECT_GE(FaultInjector::Global().Injected(FaultSite::kRecordFlush), 1u);
  }
  // The session keeps serving, and a later recording succeeds end to end.
  out.clear();
  (*session)->HandleLine("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)", &out);
  EXPECT_EQ(out, "OK 12 paths\n");
  out.clear();
  (*session)->HandleLine("!record " + path, &out);
  (*session)->HandleLine("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)", &out);
  out.clear();
  (*session)->HandleLine("!record stop", &out);
  EXPECT_EQ(out.rfind("OK recorded 1 queries", 0), 0u) << out;
  std::remove(path.c_str());
}

#ifdef __unix__

TEST(FaultSiteTest, SocketWriteDropsTheConnectionAndCountsIt) {
  GraphCatalog catalog;
  SessionManager manager(&catalog, {});
  server::TcpServer tcp(&manager);
  ASSERT_TRUE(tcp.Start({}).ok());
  {
    FaultScope scope("seed=17;socket-write=1");
    server::LineClient client;
    ASSERT_TRUE(client.Connect(tcp.port()).ok());
    // The response write is injected to fail, so the server drops the
    // connection cleanly: the client sees EOF/error, never a wedge.
    auto r = client.RoundTrip("!timing off");
    EXPECT_FALSE(r.ok());
    EXPECT_GE(FaultInjector::Global().Injected(FaultSite::kSocketWrite), 1u);
  }
  // The drop released the admission slot and was counted; the server
  // still serves the next client normally.
  for (int spin = 0; spin < 500 && manager.counters().active != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(manager.counters().slow_client_drops, 1u);
  server::LineClient healthy;
  ASSERT_TRUE(healthy.Connect(tcp.port()).ok());
  auto ok = healthy.RoundTrip("!timing off");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(*ok, "OK timing off");
  tcp.Stop();
}

#endif  // __unix__

// ---------------------------------------------------------------------------
// Fault sweep: every registered site, forced on, over a representative
// server workload — clean ERR or clean success, never a crash (ASan/TSan
// make that assertion sharp in CI).
// ---------------------------------------------------------------------------

TEST(FaultSweepTest, EverySiteForcedOnYieldsCleanStatuses) {
  for (int s = 0; s < kNumFaultSites; ++s) {
    const FaultSite site = static_cast<FaultSite>(s);
    for (uint64_t seed : {1u, 7u, 23u}) {
      FaultScope scope("seed=" + std::to_string(seed) + ";" +
                       std::string(FaultSiteName(site)) + "=1");
      const std::string dir = TempPath("sweep_cache");
      WipeDir(dir);
      GraphCatalogOptions catalog_options;
      catalog_options.snapshot_dir = dir;
      GraphCatalog catalog(catalog_options);
      SessionManager manager(&catalog, {});
      auto session = manager.Open();
      if (!session.ok()) continue;  // catalog-load fired: clean refusal
      const std::string record = TempPath("sweep_record.gqlw");
      std::string out;
      for (const std::string& line : std::vector<std::string>{
               "!timing off",
               "MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)",
               "!graph chain n=5 label=Knows",
               "!record " + record,
               "MATCH ALL WALK p = (?x)-[:Knows]->(?y)",
               "!record stop",
               "!stats",
           }) {
        out.clear();
        const bool keep = (*session)->HandleLine(line, &out);
        EXPECT_TRUE(keep);
        // Every response line is a complete, '\n'-terminated protocol
        // line — injected failures surface as ERR, never as garbage.
        ASSERT_FALSE(out.empty());
        EXPECT_EQ(out.back(), '\n');
      }
      std::remove(record.c_str());
    }
  }
  EXPECT_FALSE(FaultInjector::Global().Enabled());
}

TEST(FaultSweepTest, NonFaultedSurfaceIsByteIdenticalAcrossConfigCycles) {
  // Configure/Disable cycles must leave zero residue on the serving
  // path: the same script yields byte-identical output before and after.
  auto run = [] {
    GraphCatalog catalog;
    SessionManager manager(&catalog, {});
    auto session = manager.Open();
    EXPECT_TRUE(session.ok());
    std::string out;
    (*session)->HandleLine("!timing off", &out);
    (*session)->HandleLine("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)", &out);
    (*session)->HandleLine("MATCH ANY SHORTEST p = (?x)-[:Knows+]->(?y)",
                           &out);
    return out;
  };
  const std::string before = run();
  { FaultScope scope("seed=29;*=1"); }
  const std::string after = run();
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace pathalg
