// Unit tests for the Core Path Algebra (Definition 3.1): σ, ⋈, ∪ and the
// ∩/− extensions, including the paper's §3 friends-of-friends example
// (Figure 3) evaluated by hand-composing the operators.

#include <gtest/gtest.h>

#include "algebra/core_ops.h"
#include "path/path_ops.h"
#include "workload/figure1.h"

namespace pathalg {
namespace {

class CoreOpsTest : public ::testing::Test {
 protected:
  void SetUp() override { g_ = MakeFigure1Graph(&ids_); }

  PathSet KnowsEdges() {
    return Select(g_, EdgesOf(g_), *EdgeLabelEq(1, "Knows"));
  }

  PropertyGraph g_;
  Figure1Ids ids_;
};

TEST_F(CoreOpsTest, SelectFiltersByCondition) {
  PathSet knows = KnowsEdges();
  EXPECT_EQ(knows.size(), 4u);
  for (const Path& p : knows) {
    EXPECT_EQ(LabelOfEdgeAt(g_, p, 1), "Knows");
  }
}

TEST_F(CoreOpsTest, SelectOnEmptySetIsEmpty) {
  PathSet empty;
  EXPECT_TRUE(Select(g_, empty, *EdgeLabelEq(1, "Knows")).empty());
}

TEST_F(CoreOpsTest, SelectPreservesInputOrder) {
  PathSet edges = EdgesOf(g_);
  PathSet likes = Select(g_, edges, *EdgeLabelEq(1, "Likes"));
  // Likes edges in insertion order: e5, e7, e8, e9.
  ASSERT_EQ(likes.size(), 4u);
  EXPECT_EQ(likes[0].EdgeAt(1), ids_.e5);
  EXPECT_EQ(likes[1].EdgeAt(1), ids_.e7);
  EXPECT_EQ(likes[2].EdgeAt(1), ids_.e8);
  EXPECT_EQ(likes[3].EdgeAt(1), ids_.e9);
}

TEST_F(CoreOpsTest, JoinConcatenatesOnSharedEndpoint) {
  // Knows ⋈ Knows: 2-hop friend paths. From Figure 1:
  // e1◦e2 (n1→n3), e1◦e4 (n1→n4), e2◦e3 (n2→n2), e3◦e2 (n3→n3),
  // e3◦e4 (n3→n4), e2 ends at n3 which has out-Knows e3 → e2◦e3, etc.
  PathSet knows = KnowsEdges();
  PathSet two_hop = Join(knows, knows);
  PathSet expected;
  expected.Insert(Path({ids_.n1, ids_.n2, ids_.n3}, {ids_.e1, ids_.e2}));
  expected.Insert(Path({ids_.n1, ids_.n2, ids_.n4}, {ids_.e1, ids_.e4}));
  expected.Insert(Path({ids_.n2, ids_.n3, ids_.n2}, {ids_.e2, ids_.e3}));
  expected.Insert(Path({ids_.n3, ids_.n2, ids_.n3}, {ids_.e3, ids_.e2}));
  expected.Insert(Path({ids_.n3, ids_.n2, ids_.n4}, {ids_.e3, ids_.e4}));
  EXPECT_EQ(two_hop, expected);
}

TEST_F(CoreOpsTest, JoinWithNodesIsIdentityOnMatchingEndpoints) {
  PathSet knows = KnowsEdges();
  PathSet nodes = NodesOf(g_);
  // S ⋈ Nodes(G) = S (every path's Last has a zero-length continuation).
  EXPECT_EQ(Join(knows, nodes), knows);
  EXPECT_EQ(Join(nodes, knows), knows);
}

TEST_F(CoreOpsTest, JoinWithEmptyIsEmpty) {
  PathSet empty;
  EXPECT_TRUE(Join(KnowsEdges(), empty).empty());
  EXPECT_TRUE(Join(empty, KnowsEdges()).empty());
}

TEST_F(CoreOpsTest, JoinProducesNoMatchesAcrossDisconnectedSets) {
  // Has_creator edges end at Persons; no Has_creator edge starts at a
  // Person, so Has_creator ⋈ Has_creator = ∅.
  PathSet hc = Select(g_, EdgesOf(g_), *EdgeLabelEq(1, "Has_creator"));
  EXPECT_TRUE(Join(hc, hc).empty());
}

TEST_F(CoreOpsTest, UnionDeduplicates) {
  PathSet knows = KnowsEdges();
  PathSet all = Union(knows, KnowsEdges());
  EXPECT_EQ(all, knows);
  PathSet likes = Select(g_, EdgesOf(g_), *EdgeLabelEq(1, "Likes"));
  PathSet both = Union(knows, likes);
  EXPECT_EQ(both.size(), 8u);
}

TEST_F(CoreOpsTest, UnionIsCommutativeAndAssociativeAsSets) {
  PathSet a = KnowsEdges();
  PathSet b = Select(g_, EdgesOf(g_), *EdgeLabelEq(1, "Likes"));
  PathSet c = NodesOf(g_);
  EXPECT_EQ(Union(a, b), Union(b, a));
  EXPECT_EQ(Union(Union(a, b), c), Union(a, Union(b, c)));
  EXPECT_EQ(Union(a, a), a);  // idempotent
}

TEST_F(CoreOpsTest, JoinIsAssociative) {
  PathSet knows = KnowsEdges();
  PathSet left = Join(Join(knows, knows), knows);
  PathSet right = Join(knows, Join(knows, knows));
  EXPECT_EQ(left, right);
}

TEST_F(CoreOpsTest, JoinDistributesOverUnion) {
  PathSet knows = KnowsEdges();
  PathSet likes = Select(g_, EdgesOf(g_), *EdgeLabelEq(1, "Likes"));
  PathSet hc = Select(g_, EdgesOf(g_), *EdgeLabelEq(1, "Has_creator"));
  EXPECT_EQ(Join(Union(knows, likes), hc),
            Union(Join(knows, hc), Join(likes, hc)));
  EXPECT_EQ(Join(hc, Union(knows, likes)),
            Union(Join(hc, knows), Join(hc, likes)));
}

TEST_F(CoreOpsTest, IntersectAndDifference) {
  PathSet knows = KnowsEdges();
  PathSet edges = EdgesOf(g_);
  EXPECT_EQ(Intersect(knows, edges), knows);
  EXPECT_EQ(Intersect(edges, knows), knows);
  PathSet not_knows = Difference(edges, knows);
  EXPECT_EQ(not_knows.size(), 7u);
  EXPECT_TRUE(Intersect(not_knows, knows).empty());
  EXPECT_EQ(Union(not_knows, knows), edges);
  EXPECT_TRUE(Difference(knows, edges).empty());
}

TEST_F(CoreOpsTest, Figure3FriendsOfFriendsPlanByHand) {
  // σ_{first.name="Moe"}( σK(Se) ∪ (σK(Se) ⋈ σK(Se)) )  — Figure 3.
  PathSet knows = KnowsEdges();
  PathSet unioned = Union(knows, Join(knows, knows));
  PathSet result = Select(g_, unioned, *FirstPropEq("name", Value("Moe")));
  // Moe's 1-hop: (n1,e1,n2); 2-hop: (n1,e1,n2,e2,n3), (n1,e1,n2,e4,n4).
  PathSet expected;
  expected.Insert(Path({ids_.n1, ids_.n2}, {ids_.e1}));
  expected.Insert(Path({ids_.n1, ids_.n2, ids_.n3}, {ids_.e1, ids_.e2}));
  expected.Insert(Path({ids_.n1, ids_.n2, ids_.n4}, {ids_.e1, ids_.e4}));
  EXPECT_EQ(result, expected);
}

TEST_F(CoreOpsTest, SelectionPushdownEquivalenceOnFigure3) {
  // Pushing σ_{first.name="Moe"} below the union and to the left join
  // operand (Figure 6's rewrite) preserves the result.
  PathSet knows = KnowsEdges();
  auto moe = FirstPropEq("name", Value("Moe"));
  PathSet plan_a = Select(
      g_, Union(knows, Join(knows, knows)), *moe);
  PathSet moe_knows = Select(g_, knows, *moe);
  PathSet plan_b = Union(moe_knows, Join(moe_knows, knows));
  EXPECT_EQ(plan_a, plan_b);
}

}  // namespace
}  // namespace pathalg
