// Error-path tests for the two text loaders — the CSV graph format
// (graph/csv.h) and the .gqlw workload format (engine/workload_file.h).
// Malformed rows, unreadable paths and mid-file truncation must each
// yield a diagnostic Status (with a line number where the format
// promises one) and never crash; the suite runs under ASan in CI, which
// is what makes "never crash" include "never leak or read past a
// buffer". The happy paths are covered by graph_test / workload_file
// tests; this file is purely the failure surface.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "engine/workload_file.h"
#include "graph/csv.h"

namespace pathalg {
namespace {

std::string TempPath(const std::string& stem) {
  return ::testing::TempDir() + "pathalg_loader_error_test_" + stem;
}

std::string WriteFile(const std::string& stem, const std::string& text) {
  const std::string path = TempPath(stem);
  std::ofstream file(path);
  file << text;
  return path;
}

// ---------------------------------------------------------------------------
// CSV graph loader
// ---------------------------------------------------------------------------

TEST(CsvErrorTest, MalformedNodeRowNamesTheLine) {
  auto g = LoadGraphFromCsv("N,a,Person\nN,only_name\n");
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("node line"), std::string::npos)
      << g.status().ToString();
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos)
      << g.status().ToString();
}

TEST(CsvErrorTest, MalformedEdgeRowNamesTheLine) {
  auto g = LoadGraphFromCsv("N,a,Person\nN,b,Person\nE,e1,a\n");
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("edge line"), std::string::npos);
  EXPECT_NE(g.status().message().find("line 3"), std::string::npos);
}

TEST(CsvErrorTest, EdgeReferencingUnknownNodeIsDiagnosed) {
  auto g = LoadGraphFromCsv("N,a,Person\nE,e1,a,ghost,Knows\n");
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("unknown node"), std::string::npos);
}

TEST(CsvErrorTest, DuplicateNodeNameIsDiagnosed) {
  auto g = LoadGraphFromCsv("N,a,Person\nN,a,Person\n");
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("duplicate node"), std::string::npos);
}

TEST(CsvErrorTest, UnknownRecordTypeIsDiagnosed) {
  auto g = LoadGraphFromCsv("N,a,Person\nX,what,is,this\n");
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("unknown record type"),
            std::string::npos);
}

TEST(CsvErrorTest, MidFileTruncationIsACleanParseError) {
  // A copy cut off mid-record (no trailing newline, half an edge row):
  // the loader must diagnose the torn line, not crash or silently accept
  // a partial graph.
  const std::string whole =
      "N,a,Person\nN,b,Person\nN,c,Person\n"
      "E,e1,a,b,Knows\nE,e2,b,c";
  auto g = LoadGraphFromCsv(whole);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("edge line"), std::string::npos);
}

TEST(CsvErrorTest, UnreadableFilePathIsNotFound) {
  auto g = engine::BuildWorkloadGraph("csv /no/such/dir/graph.csv");
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsNotFound()) << g.status().ToString();
}

TEST(CsvErrorTest, MalformedFileOnDiskIsDiagnosedThroughTheGraphSpec) {
  const std::string path =
      WriteFile("bad_graph.csv", "N,a,Person\nE,e1,a,ghost,Knows\n");
  auto g = engine::BuildWorkloadGraph("csv " + path);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("unknown node"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// .gqlw workload loader
// ---------------------------------------------------------------------------

TEST(WorkloadErrorTest, UnreadablePathIsNotFound) {
  auto w = engine::LoadWorkloadFile("/no/such/dir/workload.gqlw");
  ASSERT_FALSE(w.ok());
  EXPECT_TRUE(w.status().IsNotFound()) << w.status().ToString();
}

TEST(WorkloadErrorTest, UnknownDirectiveIsAHardError) {
  const std::string path = WriteFile(
      "unknown_directive.gqlw", "# frobnicate 3\nMATCH ALL WALK p = (?x)\n");
  auto w = engine::LoadWorkloadFile(path);
  ASSERT_FALSE(w.ok());
  EXPECT_NE(w.status().message().find("line 1"), std::string::npos)
      << w.status().ToString();
  std::remove(path.c_str());
}

TEST(WorkloadErrorTest, MalformedDirectiveValueIsDiagnosed) {
  const std::string path = WriteFile(
      "bad_repeat.gqlw", "# repeat lots\nMATCH ALL WALK p = (?x)\n");
  auto w = engine::LoadWorkloadFile(path);
  ASSERT_FALSE(w.ok());
  EXPECT_NE(w.status().message().find("line 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WorkloadErrorTest, MisplacedGraphDirectiveIsDiagnosed) {
  // `# graph` is only legal before the first query; a truncated splice
  // that moved it below one must be rejected, not silently honored for
  // later queries only.
  const std::string path = WriteFile(
      "late_graph.gqlw",
      "MATCH ALL WALK p = (?x)-[:Knows]->(?y)\n# graph figure1\n");
  auto w = engine::LoadWorkloadFile(path);
  ASSERT_FALSE(w.ok());
  EXPECT_NE(w.status().message().find("line 2"), std::string::npos)
      << w.status().ToString();
  std::remove(path.c_str());
}

TEST(WorkloadErrorTest, TruncatedDirectiveIsACleanParseError) {
  // Mid-file truncation right after a directive keyword: "# expect" with
  // its value torn off must be a diagnostic, never an OOB read.
  const std::string path = WriteFile(
      "truncated.gqlw",
      "# graph figure1\nMATCH ALL WALK p = (?x)-[:Knows]->(?y)\n# expect");
  auto w = engine::LoadWorkloadFile(path);
  ASSERT_FALSE(w.ok());
  EXPECT_NE(w.status().message().find("line 3"), std::string::npos)
      << w.status().ToString();
  std::remove(path.c_str());
}

TEST(WorkloadErrorTest, BadGraphSpecInsideWorkloadIsDiagnosed) {
  const std::string path = WriteFile(
      "bad_spec.gqlw",
      "# graph social persons=1\nMATCH ALL WALK p = (?x)-[:Knows]->(?y)\n");
  auto w = engine::LoadWorkloadFile(path);
  // The spec parses at load or build time depending on the parameter —
  // either way the pipeline diagnoses it instead of crashing.
  if (w.ok()) {
    auto g = engine::BuildWorkloadGraph(w->graph_spec);
    ASSERT_FALSE(g.ok());
    EXPECT_NE(g.status().message().find("persons"), std::string::npos);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pathalg
