// Unit tests for the common substrate: Status, Result<T>, string utilities
// and hash combinators.

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"

namespace pathalg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad node id");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad node id");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad node id");
}

TEST(StatusTest, AllFactoriesMapToTheirCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status st = Status::NotFound("gone");
  Status copy = st;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_EQ(copy.message(), "gone");
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsNotFound());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    PATHALG_RETURN_NOT_OK(Status::ParseError("inner"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsParseError());
  auto succeeds = []() -> Status {
    PATHALG_RETURN_NOT_OK(Status::OK());
    return Status::NotFound("after");
  };
  EXPECT_TRUE(succeeds().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusIsNormalizedToInternalError) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::InvalidArgument("no");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    PATHALG_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 6);
  EXPECT_TRUE(outer(true).status().IsInvalidArgument());
}

TEST(StrUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("MATCH p", "MATCH"));
  EXPECT_FALSE(StartsWith("MAT", "MATCH"));
}

TEST(StrUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("walk", "WALK"));
  EXPECT_TRUE(EqualsIgnoreCase("TrAiL", "trail"));
  EXPECT_FALSE(EqualsIgnoreCase("walk", "walks"));
}

TEST(StrUtilTest, ToUpperAndQuote) {
  EXPECT_EQ(ToUpper("shortest k"), "SHORTEST K");
  EXPECT_EQ(QuoteString("Moe"), "\"Moe\"");
  EXPECT_EQ(QuoteString("a\"b\\c"), "\"a\\\"b\\\\c\"");
}

TEST(HashTest, HashRangeDiscriminates) {
  std::vector<uint32_t> a{1, 2, 3}, b{1, 3, 2}, c{1, 2, 3};
  EXPECT_EQ(HashRange(a.begin(), a.end()), HashRange(c.begin(), c.end()));
  EXPECT_NE(HashRange(a.begin(), a.end()), HashRange(b.begin(), b.end()));
}

TEST(HashTest, ChainingIsAssociative) {
  // HashRange chaining over split sequences equals hashing the whole
  // sequence — Path::Hash relies on this being well-defined (the node/edge
  // split point is implied by the sequence length, so no ambiguity).
  std::vector<uint32_t> a1{1, 2}, a2{3}, whole{1, 2, 3};
  size_t chained = HashRange(a2.begin(), a2.end(),
                             HashRange(a1.begin(), a1.end(), 17));
  EXPECT_EQ(chained, HashRange(whole.begin(), whole.end(), 17));
}

TEST(HashTest, SeedsDiscriminate) {
  std::vector<uint32_t> v{1, 2, 3};
  EXPECT_NE(HashRange(v.begin(), v.end(), 0),
            HashRange(v.begin(), v.end(), 17));
}

TEST(StrUtilTest, SplitEscapedRoundTrip) {
  EXPECT_EQ(SplitEscaped("a\\,b,c", ','),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(SplitEscaped("x\\\\,y", ','),
            (std::vector<std::string>{"x\\", "y"}));
  EXPECT_EQ(EscapeSeparator("a,b\\c", ','), "a\\,b\\\\c");
  for (std::string s : {"plain", "with,comma", "back\\slash,mix"}) {
    EXPECT_EQ(SplitEscaped(EscapeSeparator(s, ','), ','),
              std::vector<std::string>{s});
  }
}

}  // namespace
}  // namespace pathalg
