// Unit tests for the chunked work-stealing pool (common/thread_pool.h):
// the determinism-bearing properties (chunk layout is a pure function of
// its inputs; chunks partition the input exactly) and the scheduling
// properties (every chunk runs exactly once at any thread count, stats
// are race-free and plausible, the pool survives heavy reuse).

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

namespace pathalg {
namespace {

TEST(ChunkLayoutTest, IsAPureFunctionOfItsInputs) {
  const ChunkLayout a = ChunkLayout::For(10000, 4, 128);
  const ChunkLayout b = ChunkLayout::For(10000, 4, 128);
  EXPECT_EQ(a.num_chunks, b.num_chunks);
  EXPECT_EQ(a.chunk_size, b.chunk_size);
  EXPECT_GT(a.num_chunks, 1u);
}

TEST(ChunkLayoutTest, ChunksPartitionTheRangeExactly) {
  for (size_t n : {1u, 2u, 7u, 127u, 128u, 255u, 256u, 1000u, 4096u, 9999u}) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      for (size_t min_chunk : {1u, 64u, 128u}) {
        const ChunkLayout layout = ChunkLayout::For(n, threads, min_chunk);
        ASSERT_GE(layout.num_chunks, 1u);
        size_t covered = 0;
        size_t prev_end = 0;
        for (size_t c = 0; c < layout.num_chunks; ++c) {
          auto [begin, end] = layout.Range(c, n);
          EXPECT_EQ(begin, prev_end);  // contiguous, in order
          EXPECT_LT(begin, end);       // never empty
          covered += end - begin;
          prev_end = end;
        }
        EXPECT_EQ(covered, n) << "n=" << n << " threads=" << threads
                              << " min_chunk=" << min_chunk;
        EXPECT_EQ(prev_end, n);
      }
    }
  }
}

TEST(ChunkLayoutTest, RespectsMinChunkFloorExceptLastChunk) {
  const ChunkLayout layout = ChunkLayout::For(1000, 4, 128);
  EXPECT_GE(layout.chunk_size, 128u);
  // The remainder-taking last chunk may legitimately be smaller (e.g.
  // n=1025, min_chunk=128: 8 chunks of 129, last holds 122); everything
  // before it holds at least min_chunk.
  for (size_t n : {1000u, 1025u, 4096u, 9999u}) {
    const ChunkLayout l = ChunkLayout::For(n, 4, 128);
    for (size_t c = 0; c + 1 < l.num_chunks; ++c) {
      auto [begin, end] = l.Range(c, n);
      EXPECT_GE(end - begin, 128u) << "n=" << n << " chunk " << c;
    }
  }
}

TEST(ChunkLayoutTest, PlanForMatchesParallelForDispatch) {
  // PlanFor is the single source of truth callers size buffers with: one
  // inline chunk when the input stays serial, the full layout otherwise.
  const ParallelOptions serial{1, 128};
  EXPECT_EQ(ThreadPool::PlanFor(10000, serial).num_chunks, 1u);
  const ParallelOptions small{4, 128};
  EXPECT_EQ(ThreadPool::PlanFor(100, small).num_chunks, 1u);
  EXPECT_EQ(ThreadPool::PlanFor(100, small).chunk_size, 100u);
  const ParallelOptions par{4, 128};
  const ChunkLayout planned = ThreadPool::PlanFor(10000, par);
  const ChunkLayout raw = ChunkLayout::For(10000, 4, 128);
  EXPECT_EQ(planned.num_chunks, raw.num_chunks);
  EXPECT_EQ(planned.chunk_size, raw.chunk_size);
  EXPECT_EQ(ThreadPool::PlanFor(0, par).num_chunks, 0u);
}

TEST(ChunkLayoutTest, EmptyRangeHasNoChunks) {
  EXPECT_EQ(ChunkLayout::For(0, 4, 128).num_chunks, 0u);
}

TEST(ParallelOptionsTest, SerialAndThresholdDecisions) {
  EXPECT_FALSE((ParallelOptions{1, 128}).ShouldParallelize(1'000'000));
  EXPECT_FALSE((ParallelOptions{4, 128}).ShouldParallelize(255));
  EXPECT_TRUE((ParallelOptions{4, 128}).ShouldParallelize(256));
  // 0 resolves to hardware concurrency, which is always >= 1.
  EXPECT_GE((ParallelOptions{0, 128}).EffectiveThreads(), 1u);
  EXPECT_EQ((ParallelOptions{3, 128}).EffectiveThreads(), 3u);
  // User-supplied counts reach this from --threads / '# threads N';
  // an absurd request clamps instead of spawning thousands of OS
  // threads (results are thread-count independent, so clamping is
  // invisible).
  EXPECT_EQ((ParallelOptions{1'000'000, 128}).EffectiveThreads(),
            ParallelOptions::kMaxThreads);
}

TEST(ThreadPoolTest, EveryItemProcessedExactlyOnce) {
  for (size_t threads : {2u, 4u, 8u}) {
    const size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    ParallelOptions options{threads, /*min_chunk=*/64};
    ParallelStats stats;
    ThreadPool::Shared().ParallelFor(
        n, options, &stats, [&](size_t, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          }
        });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "item " << i << " threads " << threads;
    }
    const ChunkLayout layout = ChunkLayout::For(n, threads, 64);
    EXPECT_EQ(stats.chunks_executed, layout.num_chunks);
    EXPECT_LE(stats.steal_count, stats.chunks_executed);
    EXPECT_EQ(stats.serial_fallbacks, 0u);
  }
}

TEST(ThreadPoolTest, ChunkIndicesMatchTheAnnouncedLayout) {
  const size_t n = 5000;
  ParallelOptions options{4, 32};
  const ChunkLayout layout = ChunkLayout::For(n, 4, 32);
  std::vector<std::atomic<int>> chunk_hits(layout.num_chunks);
  ThreadPool::Shared().ParallelFor(
      n, options, nullptr, [&](size_t chunk, size_t begin, size_t end) {
        ASSERT_LT(chunk, layout.num_chunks);
        auto [want_begin, want_end] = layout.Range(chunk, n);
        EXPECT_EQ(begin, want_begin);
        EXPECT_EQ(end, want_end);
        chunk_hits[chunk].fetch_add(1, std::memory_order_relaxed);
      });
  for (size_t c = 0; c < layout.num_chunks; ++c) {
    EXPECT_EQ(chunk_hits[c].load(), 1) << "chunk " << c;
  }
}

TEST(ThreadPoolTest, SmallInputFallsBackInline) {
  ParallelOptions options{4, 128};
  ParallelStats stats;
  size_t calls = 0;
  ThreadPool::Shared().ParallelFor(
      100, options, &stats, [&](size_t chunk, size_t begin, size_t end) {
        ++calls;
        EXPECT_EQ(chunk, 0u);
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 100u);
      });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(stats.serial_fallbacks, 1u);
  EXPECT_EQ(stats.chunks_executed, 0u);  // inline runs are not pool chunks
}

TEST(ThreadPoolTest, SerialRequestNeverCountsAsFallback) {
  ParallelOptions options{1, 1};
  ParallelStats stats;
  ThreadPool::Shared().ParallelFor(1000, options, &stats,
                                   [&](size_t, size_t, size_t) {});
  EXPECT_EQ(stats.serial_fallbacks, 0u);
}

TEST(ThreadPoolTest, SurvivesManyConsecutiveRegions) {
  // ϕ re-enters the pool once per frontier round; hammer that shape.
  ParallelOptions options{4, 1};
  std::atomic<size_t> total{0};
  for (size_t round = 0; round < 300; ++round) {
    ThreadPool::Shared().ParallelFor(
        64, options, nullptr, [&](size_t, size_t begin, size_t end) {
          total.fetch_add(end - begin, std::memory_order_relaxed);
        });
  }
  EXPECT_EQ(total.load(), 300u * 64u);
}

TEST(ThreadPoolTest, ConcurrentCallersSerializeSafely) {
  // Two evaluating threads hitting the shared pool at once: regions must
  // serialize internally and both complete correctly.
  auto run = [](std::atomic<size_t>* sum) {
    ParallelOptions options{4, 16};
    for (size_t round = 0; round < 50; ++round) {
      ThreadPool::Shared().ParallelFor(
          1000, options, nullptr, [&](size_t, size_t begin, size_t end) {
            sum->fetch_add(end - begin, std::memory_order_relaxed);
          });
    }
  };
  std::atomic<size_t> sum_a{0};
  std::atomic<size_t> sum_b{0};
  std::thread t(run, &sum_a);
  run(&sum_b);
  t.join();
  EXPECT_EQ(sum_a.load(), 50u * 1000u);
  EXPECT_EQ(sum_b.load(), 50u * 1000u);
}

TEST(ThreadPoolTest, SubmittedTasksAllRunDetached) {
  std::atomic<size_t> ran{0};
  std::mutex m;
  std::condition_variable cv;
  for (size_t i = 0; i < 32; ++i) {
    ThreadPool::Shared().Submit([&] {
      if (ran.fetch_add(1, std::memory_order_relaxed) + 1 == 32) {
        std::lock_guard<std::mutex> lock(m);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(m);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return ran.load() == 32; }));
}

TEST(ThreadPoolTest, BlockedTasksDoNotStarveRegionsOrOtherTasks) {
  // The server shape: long-blocking connection tasks must neither stop
  // fork-join regions from completing nor prevent later tasks from
  // running (Submit grows the pool past every unfinished task).
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  constexpr size_t kBlockers = 4;
  std::atomic<size_t> blocked{0};
  for (size_t i = 0; i < kBlockers; ++i) {
    ThreadPool::Shared().Submit([&] {
      blocked.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock<std::mutex> lock(m);
      cv.wait(lock, [&] { return release; });
    });
  }
  while (blocked.load() < kBlockers) std::this_thread::yield();

  // A region completes while all blockers hold their workers...
  ParallelOptions options{4, 1};
  std::atomic<size_t> total{0};
  ThreadPool::Shared().ParallelFor(
      256, options, nullptr, [&](size_t, size_t begin, size_t end) {
        total.fetch_add(end - begin, std::memory_order_relaxed);
      });
  EXPECT_EQ(total.load(), 256u);

  // ...and so does a task submitted after them.
  std::atomic<bool> late_ran{false};
  ThreadPool::Shared().Submit([&] { late_ran.store(true); });
  for (int spin = 0; spin < 30000 && !late_ran.load(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(late_ran.load());

  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  // Drain: counters must eventually account for every submitted task.
  const ThreadPoolCounters before = ThreadPool::Shared().Counters();
  for (int spin = 0; spin < 30000; ++spin) {
    const ThreadPoolCounters c = ThreadPool::Shared().Counters();
    if (c.tasks_completed == c.tasks_submitted) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const ThreadPoolCounters after = ThreadPool::Shared().Counters();
  EXPECT_EQ(after.tasks_completed, after.tasks_submitted);
  EXPECT_GE(after.tasks_submitted, before.tasks_submitted);
}

TEST(ThreadPoolTest, CountersAccumulateAcrossRegions) {
  const ThreadPoolCounters before = ThreadPool::Shared().Counters();
  ParallelOptions options{4, 1};
  ParallelStats stats;
  ThreadPool::Shared().ParallelFor(512, options, &stats,
                                   [&](size_t, size_t, size_t) {});
  const ThreadPoolCounters after = ThreadPool::Shared().Counters();
  EXPECT_EQ(after.regions, before.regions + 1);
  EXPECT_EQ(after.chunks, before.chunks + stats.chunks_executed);
  EXPECT_GE(after.workers, 1u);
}

TEST(ThreadPoolTest, RegionsStayParallelWhileTasksHoldWorkers) {
  // Regression: participant slots are claimed dynamically by whichever
  // workers arrive, not bound to worker indices — otherwise long-lived
  // tasks occupying the low-index workers would serialize every region
  // onto the caller even though freshly-grown workers idle. The body
  // blocks chunk execution until two distinct threads have entered, so
  // the test only completes if a worker actually joins the caller.
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  constexpr size_t kBlockers = 4;
  std::atomic<size_t> blocked{0};
  for (size_t i = 0; i < kBlockers; ++i) {
    ThreadPool::Shared().Submit([&] {
      blocked.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock<std::mutex> lock(m);
      cv.wait(lock, [&] { return release; });
    });
  }
  while (blocked.load() < kBlockers) std::this_thread::yield();

  std::mutex body_m;
  std::condition_variable body_cv;
  std::set<std::thread::id> participants;
  bool two_seen = false;
  bool gave_up = false;  // only the first chunk waits; a serial region
                         // must fail fast, not 256 × timeout
  ParallelOptions options{4, 1};
  ThreadPool::Shared().ParallelFor(
      256, options, nullptr, [&](size_t, size_t, size_t) {
        std::unique_lock<std::mutex> lock(body_m);
        participants.insert(std::this_thread::get_id());
        if (participants.size() >= 2) {
          two_seen = true;
          body_cv.notify_all();
          return;
        }
        if (gave_up) return;
        // First thread in: give a second participant (a pool worker
        // claiming a slot) time to arrive before draining more chunks.
        if (!body_cv.wait_for(lock, std::chrono::seconds(10),
                              [&] { return two_seen; })) {
          gave_up = true;
        }
      });
  EXPECT_GE(participants.size(), 2u)
      << "region ran serially while idle workers existed";

  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
}

TEST(ThreadPoolTest, TasksMayReenterThePoolForRegions) {
  // A connection handler evaluating a query runs ParallelFor from inside
  // a pool task; that nesting must complete.
  std::atomic<size_t> total{0};
  std::atomic<bool> done{false};
  ThreadPool::Shared().Submit([&] {
    ParallelOptions options{4, 1};
    ThreadPool::Shared().ParallelFor(
        128, options, nullptr, [&](size_t, size_t begin, size_t end) {
          total.fetch_add(end - begin, std::memory_order_relaxed);
        });
    done.store(true, std::memory_order_release);
  });
  for (int spin = 0; spin < 30000 && !done.load(std::memory_order_acquire);
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(done.load());
  EXPECT_EQ(total.load(), 128u);
}

TEST(ParallelStatsTest, MergeSums) {
  ParallelStats a{3, 1, 2};
  const ParallelStats b{5, 0, 1};
  a.Merge(b);
  EXPECT_EQ(a.chunks_executed, 8u);
  EXPECT_EQ(a.steal_count, 1u);
  EXPECT_EQ(a.serial_fallbacks, 3u);
}

}  // namespace
}  // namespace pathalg
