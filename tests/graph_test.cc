// Unit tests for the property graph substrate: Value, PropertyGraph,
// GraphBuilder and the CSV loader (Definition 2.1 behaviours).

#include <gtest/gtest.h>

#include "graph/csv.h"
#include "graph/property_graph.h"
#include "graph/value.h"
#include "workload/figure1.h"

namespace pathalg {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{3}).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_EQ(Value("Moe").AsString(), "Moe");
  EXPECT_EQ(Value(7).AsInt(), 7);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_NE(Value(int64_t{3}), Value(3.5));
  EXPECT_NE(Value(int64_t{3}), Value("3"));
  EXPECT_EQ(Value(), Value());
  EXPECT_NE(Value(), Value(0));
}

TEST(ValueTest, TotalOrder) {
  EXPECT_LT(Value(), Value(false));
  EXPECT_LT(Value(false), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{1}), Value(1.5));
  EXPECT_LT(Value(1.5), Value(int64_t{2}));
  EXPECT_LT(Value(int64_t{5}), Value("a"));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_GE(Value("b"), Value("a"));
}

TEST(ValueTest, EqualValuesHashAlike) {
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value("Moe").Hash(), Value(std::string("Moe")).Hash());
}

TEST(ValueTest, ToStringQuotesStrings) {
  EXPECT_EQ(Value("Moe").ToString(), "\"Moe\"");
  EXPECT_EQ(Value(int64_t{3}).ToString(), "3");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value().ToString(), "null");
}

TEST(GraphBuilderTest, BuildsNodesAndEdges) {
  GraphBuilder b;
  NodeId a = b.AddNode("Person", {{"name", Value("Ann")}});
  NodeId c = b.AddNode("Person", {{"name", Value("Bob")}});
  Result<EdgeId> e = b.AddEdge(a, c, "Knows", {{"since", Value(2019)}});
  ASSERT_TRUE(e.ok());
  PropertyGraph g = b.Build();

  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Source(*e), a);
  EXPECT_EQ(g.Target(*e), c);
  EXPECT_EQ(g.NodeLabel(a), "Person");
  EXPECT_EQ(g.EdgeLabel(*e), "Knows");
  ASSERT_NE(g.NodeProperty(a, "name"), nullptr);
  EXPECT_EQ(*g.NodeProperty(a, "name"), Value("Ann"));
  ASSERT_NE(g.EdgeProperty(*e, "since"), nullptr);
  EXPECT_EQ(*g.EdgeProperty(*e, "since"), Value(2019));
}

TEST(GraphBuilderTest, RejectsDanglingEdge) {
  GraphBuilder b;
  NodeId a = b.AddNode("Person");
  Result<EdgeId> e = b.AddEdge(a, 999, "Knows");
  EXPECT_FALSE(e.ok());
  EXPECT_TRUE(e.status().IsInvalidArgument());
}

TEST(GraphBuilderTest, UnlabelledObjectsHaveEmptyLabel) {
  GraphBuilder b;
  NodeId a = b.AddNode();
  NodeId c = b.AddNode();
  Result<EdgeId> e = b.AddEdge(a, c);
  ASSERT_TRUE(e.ok());
  PropertyGraph g = b.Build();
  EXPECT_EQ(g.NodeLabelId(a), kNoLabel);
  EXPECT_EQ(g.NodeLabel(a), "");
  EXPECT_EQ(g.EdgeLabel(*e), "");
}

TEST(GraphBuilderTest, DuplicatePropertyKeyLastWriterWins) {
  GraphBuilder b;
  NodeId a = b.AddNode("Person",
                       {{"name", Value("first")}, {"name", Value("second")}});
  PropertyGraph g = b.Build();
  ASSERT_NE(g.NodeProperty(a, "name"), nullptr);
  EXPECT_EQ(*g.NodeProperty(a, "name"), Value("second"));
  EXPECT_EQ(g.NodeProperties(a).size(), 1u);
}

TEST(PropertyGraphTest, AdjacencyIndexes) {
  Figure1Ids ids;
  PropertyGraph g = MakeFigure1Graph(&ids);
  // n2 has out-edges e2 (→n3), e4 (→n4), e5 (→n5).
  EXPECT_EQ(g.OutEdges(ids.n2).size(), 3u);
  // n2 has in-edges e1 (from n1) and e3 (from n3).
  EXPECT_EQ(g.InEdges(ids.n2).size(), 2u);
  // 4 Knows edges, 4 Likes, 3 Has_creator.
  EXPECT_EQ(g.EdgesWithLabel(g.FindLabel("Knows")).size(), 4u);
  EXPECT_EQ(g.EdgesWithLabel(g.FindLabel("Likes")).size(), 4u);
  EXPECT_EQ(g.EdgesWithLabel(g.FindLabel("Has_creator")).size(), 3u);
}

TEST(PropertyGraphTest, LabelInterning) {
  PropertyGraph g = MakeFigure1Graph();
  LabelId knows = g.FindLabel("Knows");
  ASSERT_NE(knows, kNoLabel);
  EXPECT_EQ(g.LabelName(knows), "Knows");
  EXPECT_EQ(g.FindLabel("NoSuchLabel"), kNoLabel);
  EXPECT_TRUE(g.EdgesWithLabel(kNoLabel).empty());
}

TEST(PropertyGraphTest, FindNodeByNameAndProperty) {
  Figure1Ids ids;
  PropertyGraph g = MakeFigure1Graph(&ids);
  EXPECT_EQ(g.FindNodeByName("n4"), ids.n4);
  EXPECT_EQ(g.FindNodeByName("nope"), kInvalidId);
  EXPECT_EQ(g.FindNodeByProperty("name", Value("Moe")), ids.n1);
  EXPECT_EQ(g.FindNodeByProperty("name", Value("Nobody")), kInvalidId);
  EXPECT_EQ(g.FindNodeByProperty("nokey", Value("Moe")), kInvalidId);
}

TEST(PropertyGraphTest, MissingPropertyIsNull) {
  Figure1Ids ids;
  PropertyGraph g = MakeFigure1Graph(&ids);
  EXPECT_EQ(g.NodeProperty(ids.n1, "age"), nullptr);
  EXPECT_EQ(g.EdgeProperty(ids.e1, "since"), nullptr);
}

TEST(Figure1Test, MatchesPaperStructure) {
  Figure1Ids ids;
  PropertyGraph g = MakeFigure1Graph(&ids);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_edges(), 11u);
  // Knows edges from Table 3: e1:(n1→n2), e2:(n2→n3), e3:(n3→n2), e4:(n2→n4).
  EXPECT_EQ(g.Source(ids.e1), ids.n1);
  EXPECT_EQ(g.Target(ids.e1), ids.n2);
  EXPECT_EQ(g.Source(ids.e2), ids.n2);
  EXPECT_EQ(g.Target(ids.e2), ids.n3);
  EXPECT_EQ(g.Source(ids.e3), ids.n3);
  EXPECT_EQ(g.Target(ids.e3), ids.n2);
  EXPECT_EQ(g.Source(ids.e4), ids.n2);
  EXPECT_EQ(g.Target(ids.e4), ids.n4);
  // path2 of §1: (n1, e8, n6, e11, n3, e7, n7, e10, n4).
  EXPECT_EQ(g.Source(ids.e8), ids.n1);
  EXPECT_EQ(g.Target(ids.e8), ids.n6);
  EXPECT_EQ(g.Source(ids.e11), ids.n6);
  EXPECT_EQ(g.Target(ids.e11), ids.n3);
  EXPECT_EQ(g.Source(ids.e7), ids.n3);
  EXPECT_EQ(g.Target(ids.e7), ids.n7);
  EXPECT_EQ(g.Source(ids.e10), ids.n7);
  EXPECT_EQ(g.Target(ids.e10), ids.n4);
  // Properties used by the paper's examples.
  EXPECT_EQ(*g.NodeProperty(ids.n1, "name"), Value("Moe"));
  EXPECT_EQ(*g.NodeProperty(ids.n4, "name"), Value("Apu"));
  EXPECT_EQ(*g.NodeProperty(ids.n3, "name"), Value("Lisa"));
  EXPECT_EQ(g.NodeLabel(ids.n1), "Person");
  EXPECT_EQ(g.NodeLabel(ids.n6), "Message");
}

TEST(CsvTest, ValueSniffing) {
  EXPECT_EQ(ParseValueText("true"), Value(true));
  EXPECT_EQ(ParseValueText("false"), Value(false));
  EXPECT_EQ(ParseValueText("null"), Value());
  EXPECT_EQ(ParseValueText("42"), Value(42));
  EXPECT_EQ(ParseValueText("-7"), Value(-7));
  EXPECT_EQ(ParseValueText("2.5"), Value(2.5));
  EXPECT_EQ(ParseValueText("Moe"), Value("Moe"));
  EXPECT_EQ(ParseValueText("1.2.3"), Value("1.2.3"));
}

TEST(CsvTest, LoadsGraph) {
  auto g = LoadGraphFromCsv(
      "# comment\n"
      "N,a,Person,name=Ann,age=30\n"
      "N,b,Person,name=Bob\n"
      "E,ab,a,b,Knows,since=2020\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 2u);
  EXPECT_EQ(g->num_edges(), 1u);
  NodeId a = g->FindNodeByName("a");
  EXPECT_EQ(*g->NodeProperty(a, "age"), Value(30));
  EXPECT_EQ(g->EdgeLabel(0), "Knows");
}

TEST(CsvTest, RejectsMalformedInput) {
  EXPECT_TRUE(LoadGraphFromCsv("X,what\n").status().IsParseError());
  EXPECT_TRUE(LoadGraphFromCsv("N,a\n").status().IsParseError());
  EXPECT_TRUE(
      LoadGraphFromCsv("N,a,P\nE,e,a,missing,L\n").status().IsParseError());
  EXPECT_TRUE(
      LoadGraphFromCsv("N,a,P\nN,a,P\n").status().IsParseError());
  EXPECT_TRUE(LoadGraphFromCsv("E,e,a,b\n").status().IsParseError());
}

TEST(CsvTest, RoundTripsFigure1) {
  PropertyGraph g = MakeFigure1Graph();
  std::string text = DumpGraphToCsv(g);
  auto g2 = LoadGraphFromCsv(text);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->num_nodes(), g.num_nodes());
  EXPECT_EQ(g2->num_edges(), g.num_edges());
  EXPECT_EQ(DumpGraphToCsv(*g2), text);
  NodeId moe = g2->FindNodeByProperty("name", Value("Moe"));
  ASSERT_NE(moe, kInvalidId);
  EXPECT_EQ(g2->NodeName(moe), "n1");
}

}  // namespace
}  // namespace pathalg
