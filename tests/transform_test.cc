// Tests for graph transforms (reverse graph, label subgraph) and their use
// for inverse-label (two-way) RPQs, plus the path functions implementing
// GQL's group variables (§2.3).

#include <gtest/gtest.h>

#include "algebra/core_ops.h"
#include "algebra/recursive.h"
#include "baseline/automaton_eval.h"
#include "graph/transform.h"
#include "path/path_functions.h"
#include "path/path_ops.h"
#include "plan/evaluator.h"
#include "regex/compile.h"
#include "regex/parser.h"
#include "workload/figure1.h"

namespace pathalg {
namespace {

class TransformTest : public ::testing::Test {
 protected:
  void SetUp() override { g_ = MakeFigure1Graph(&ids_); }
  PropertyGraph g_;
  Figure1Ids ids_;
};

TEST_F(TransformTest, ReverseGraphFlipsEveryEdge) {
  PropertyGraph rev = ReverseGraph(g_);
  ASSERT_EQ(rev.num_nodes(), g_.num_nodes());
  ASSERT_EQ(rev.num_edges(), g_.num_edges());
  for (EdgeId e = 0; e < g_.num_edges(); ++e) {
    EXPECT_EQ(rev.Source(e), g_.Target(e));
    EXPECT_EQ(rev.Target(e), g_.Source(e));
    EXPECT_EQ(rev.EdgeLabel(e), g_.EdgeLabel(e));
    EXPECT_EQ(rev.EdgeName(e), g_.EdgeName(e));
  }
  // Properties and names survive.
  EXPECT_EQ(*rev.NodeProperty(ids_.n1, "name"), Value("Moe"));
  EXPECT_EQ(rev.NodeName(ids_.n4), "n4");
  // Double reversal is the identity on ρ.
  PropertyGraph back = ReverseGraph(rev);
  for (EdgeId e = 0; e < g_.num_edges(); ++e) {
    EXPECT_EQ(back.Source(e), g_.Source(e));
    EXPECT_EQ(back.Target(e), g_.Target(e));
  }
}

TEST_F(TransformTest, InverseRpqViaReverseGraph) {
  // "Who is known (transitively) BY Apu-reaching people?" — an inverse
  // Knows+ query: evaluate Knows+ on the reverse graph from n4.
  PropertyGraph rev = ReverseGraph(g_);
  CompileOptions copts;
  copts.semantics = PathSemantics::kAcyclic;
  PlanPtr plan = CompileRpq(*ParseRegex(":Knows+"), copts,
                            FirstPropEq("name", Value("Apu")));
  auto r = Evaluate(rev, plan);
  ASSERT_TRUE(r.ok());
  // Forward acyclic Knows+ paths INTO n4: (n2,e4,n4), (n1,e1,n2,e4,n4),
  // (n3,e3,n2,e4,n4) — reversed, they start at n4.
  EXPECT_EQ(r->size(), 3u);
  for (const Path& p : *r) {
    EXPECT_EQ(p.First(), ids_.n4);
  }
}

TEST_F(TransformTest, SubgraphByEdgeLabels) {
  PropertyGraph knows_only = SubgraphByEdgeLabels(g_, {"Knows"});
  EXPECT_EQ(knows_only.num_nodes(), 7u);
  EXPECT_EQ(knows_only.num_edges(), 4u);
  PropertyGraph social = SubgraphByEdgeLabels(g_, {"Likes", "Has_creator"});
  EXPECT_EQ(social.num_edges(), 7u);
  PropertyGraph none = SubgraphByEdgeLabels(g_, {"NoSuch"});
  EXPECT_EQ(none.num_edges(), 0u);
  EXPECT_EQ(none.num_nodes(), 7u);

  // The ϕ answer over the subgraph equals the σ-filtered answer over G.
  auto sub_answer =
      Recursive(EdgesOf(knows_only), PathSemantics::kTrail);
  auto full_answer = Recursive(
      Select(g_, EdgesOf(g_), *EdgeLabelEq(1, "Knows")),
      PathSemantics::kTrail);
  ASSERT_TRUE(sub_answer.ok() && full_answer.ok());
  EXPECT_EQ(sub_answer->size(), full_answer->size());
  // Edge ids coincide here because Knows edges come first in Figure 1.
  EXPECT_EQ(*sub_answer, *full_answer);
}

// ---------------------------------------------------------------------------
// Group variables (§2.3).
// ---------------------------------------------------------------------------
TEST_F(TransformTest, NodesAndEdgesAlong) {
  Path p({ids_.n1, ids_.n2, ids_.n3}, {ids_.e1, ids_.e2});
  EXPECT_EQ(NodesAlong(p),
            (std::vector<NodeId>{ids_.n1, ids_.n2, ids_.n3}));
  EXPECT_EQ(EdgesAlong(p), (std::vector<EdgeId>{ids_.e1, ids_.e2}));
  Path node = Path::SingleNode(ids_.n5);
  EXPECT_EQ(NodesAlong(node).size(), 1u);
  EXPECT_TRUE(EdgesAlong(node).empty());
}

TEST_F(TransformTest, CollectNodeProperty) {
  Path p({ids_.n1, ids_.n2, ids_.n3}, {ids_.e1, ids_.e2});
  auto names = CollectNodeProperty(g_, p, "name");
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(*names[0], Value("Moe"));
  EXPECT_EQ(*names[1], Value("Homer"));
  EXPECT_EQ(*names[2], Value("Lisa"));
  auto missing = CollectNodeProperty(g_, p, "age");
  for (const auto& v : missing) EXPECT_FALSE(v.has_value());
}

TEST_F(TransformTest, CollectEdgePropertyAndDistinctLabels) {
  // Mixed Person/Message path: (n1)-Likes->(n6)-Has_creator->(n3).
  Path p({ids_.n1, ids_.n6, ids_.n3}, {ids_.e8, ids_.e11});
  auto labels = DistinctNodeLabels(g_, p);
  EXPECT_EQ(labels, (std::vector<std::string>{"Person", "Message"}));
  auto props = CollectEdgeProperty(g_, p, "since");
  ASSERT_EQ(props.size(), 2u);
  EXPECT_FALSE(props[0].has_value());
}

TEST_F(TransformTest, SumEdgeProperty) {
  GraphBuilder b;
  NodeId a = b.AddNode("City", {{"name", Value("A")}});
  NodeId c = b.AddNode("City", {{"name", Value("B")}});
  NodeId d = b.AddNode("City", {{"name", Value("C")}});
  auto e1 = b.AddEdge(a, c, "Road", {{"km", Value(12.5)}});
  auto e2 = b.AddEdge(c, d, "Road", {{"km", Value(7)}});
  auto e3 = b.AddEdge(a, d, "Ferry");  // no km property
  ASSERT_TRUE(e1.ok() && e2.ok() && e3.ok());
  PropertyGraph g = b.Build();
  Path route({a, c, d}, {*e1, *e2});
  auto total = SumEdgeProperty(g, route, "km");
  ASSERT_TRUE(total.has_value());
  EXPECT_DOUBLE_EQ(*total, 19.5);
  Path ferry({a, d}, {*e3});
  EXPECT_FALSE(SumEdgeProperty(g, ferry, "km").has_value());
}

}  // namespace
}  // namespace pathalg
