#ifndef PATHALG_TESTS_FUZZ_UTIL_H_
#define PATHALG_TESTS_FUZZ_UTIL_H_

/// \file fuzz_util.h
/// Shared machinery for the randomized differential tests: a seeded random
/// regex generator (restricted to the query family where the algebra's
/// per-ϕ restrictor reading provably coincides with the automaton's
/// whole-path reading — closures at the top of union branches and
/// concatenations of closures), and trial runners that pin
///
///     CSR-backed algebra ≡ CSR-backed automaton ≡ legacy-adjacency
///     automaton
///
/// on one (graph, regex, semantics) triple. Every helper takes an explicit
/// seed or rng so CTest runs are deterministic; failure messages echo the
/// seed and regex so a red trial reproduces with one line.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "baseline/automaton_eval.h"
#include "gql/query.h"
#include "plan/evaluator.h"
#include "regex/compile.h"
#include "regex/parser.h"
#include "workload/generators.h"

namespace pathalg {
namespace fuzz {

/// One atom ":label" with a label drawn uniformly from `labels`.
inline std::string RandomAtom(std::mt19937_64& rng,
                              const std::vector<std::string>& labels) {
  std::uniform_int_distribution<size_t> dist(0, labels.size() - 1);
  return ":" + labels[dist(rng)];
}

/// A random regex from the top-closure family:
///   expr   := branch | branch "|" branch
///   branch := piece | piece "/" piece
///   piece  := inner | inner"+" | inner"*" | inner"?"
///   inner  := atom | "(" atom "/" atom ")" | "(" atom "|" atom ")"
/// Closures only wrap whole pieces and pieces only concatenate at the top,
/// so the per-ϕ and whole-path restrictor readings agree (see the proof
/// sketch atop tests/differential_test.cc).
inline std::string RandomTopClosureRegex(
    std::mt19937_64& rng, const std::vector<std::string>& labels) {
  auto inner = [&]() -> std::string {
    switch (rng() % 3) {
      case 0:
        return RandomAtom(rng, labels);
      case 1:
        return "(" + RandomAtom(rng, labels) + "/" + RandomAtom(rng, labels) +
               ")";
      default:
        return "(" + RandomAtom(rng, labels) + "|" + RandomAtom(rng, labels) +
               ")";
    }
  };
  auto piece = [&]() -> std::string {
    std::string body = inner();
    switch (rng() % 4) {
      case 0:
        return body;
      case 1:
        return body + "+";
      case 2:
        return body + "*";
      default:
        return body + "?";
    }
  };
  auto branch = [&]() -> std::string {
    std::string out = piece();
    if (rng() % 2 == 0) out += "/" + piece();
    return out;
  };
  std::string out = branch();
  if (rng() % 2 == 0) out += "|" + branch();
  return out;
}

/// Evaluates `regex_text` over `g` three ways and checks the results agree
/// path-for-path. `context` is prepended to failure messages (put the seed
/// there).
inline ::testing::AssertionResult RunDifferentialTrial(
    const PropertyGraph& g, const std::string& regex_text,
    PathSemantics semantics, const std::string& context) {
  auto fail = [&](const std::string& what) {
    return ::testing::AssertionFailure()
           << context << " regex `" << regex_text << "` semantics "
           << PathSemanticsToString(semantics) << ": " << what;
  };

  auto regex = ParseRegex(regex_text);
  if (!regex.ok()) return fail("regex parse: " + regex.status().ToString());

  CompileOptions copts;
  copts.semantics = semantics;
  auto algebra = Evaluate(g, CompileRegex(*regex, copts));
  if (!algebra.ok()) return fail("algebra: " + algebra.status().ToString());
  PathSet lhs = ApplyWholePathRestrictor(*algebra, semantics);

  AutomatonEvalOptions aopts;
  aopts.semantics = semantics;
  auto automaton = EvaluateRpqAutomaton(g, *regex, aopts);
  if (!automaton.ok()) {
    return fail("automaton: " + automaton.status().ToString());
  }
  if (lhs != *automaton) {
    return fail("CSR algebra (" + std::to_string(lhs.size()) +
                " paths) != CSR automaton (" +
                std::to_string(automaton->size()) + " paths)\n  algebra: " +
                lhs.ToString(g) + "\n  automaton: " + automaton->ToString(g));
  }

#if PATHALG_LEGACY_ADJACENCY
  aopts.use_legacy_adjacency = true;
  auto legacy = EvaluateRpqAutomaton(g, *regex, aopts);
  if (!legacy.ok()) {
    return fail("legacy automaton: " + legacy.status().ToString());
  }
  if (*legacy != *automaton) {
    return fail("legacy adjacency (" + std::to_string(legacy->size()) +
                " paths) != CSR adjacency (" +
                std::to_string(automaton->size()) + " paths)\n  legacy: " +
                legacy->ToString(g) + "\n  csr: " + automaton->ToString(g));
  }
#endif
  return ::testing::AssertionSuccess();
}

/// Structure-level differential: the CSR runs must hold exactly the edge
/// ids of the legacy vector-of-vectors (as sets; the orders legitimately
/// differ — legacy is ascending id, CSR is (label, id)).
#if PATHALG_LEGACY_ADJACENCY
inline ::testing::AssertionResult CsrMatchesLegacy(const PropertyGraph& g,
                                                   const std::string& context) {
  auto fail = [&](const std::string& what) {
    return ::testing::AssertionFailure() << context << ": " << what;
  };
  auto as_sorted = [](auto&& range) {
    std::vector<EdgeId> v(range.begin(), range.end());
    std::sort(v.begin(), v.end());
    return v;
  };
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (as_sorted(g.OutEdges(n)) != as_sorted(g.LegacyOutEdges(n))) {
      return fail("out-edges of node " + std::to_string(n) + " differ");
    }
    if (as_sorted(g.InEdges(n)) != as_sorted(g.LegacyInEdges(n))) {
      return fail("in-edges of node " + std::to_string(n) + " differ");
    }
    for (LabelId l = 0; l < g.num_labels(); ++l) {
      std::vector<EdgeId> want;
      for (EdgeId e : g.LegacyOutEdges(n)) {
        if (g.EdgeLabelId(e) == l) want.push_back(e);
      }
      if (as_sorted(g.OutEdgesWithLabel(n, l)) != want) {
        return fail("out-edges of (node " + std::to_string(n) + ", label " +
                    std::string(g.LabelName(l)) + ") differ");
      }
      want.clear();
      for (EdgeId e : g.LegacyInEdges(n)) {
        if (g.EdgeLabelId(e) == l) want.push_back(e);
      }
      if (as_sorted(g.InEdgesWithLabel(n, l)) != want) {
        return fail("in-edges of (node " + std::to_string(n) + ", label " +
                    std::string(g.LabelName(l)) + ") differ");
      }
    }
  }
  for (LabelId l = 0; l < g.num_labels(); ++l) {
    if (as_sorted(g.EdgesWithLabel(l)) != g.LegacyEdgesWithLabel(l)) {
      return fail("EdgesWithLabel(" + std::string(g.LabelName(l)) +
                  ") differs");
    }
  }
  return ::testing::AssertionSuccess();
}
#endif  // PATHALG_LEGACY_ADJACENCY

}  // namespace fuzz
}  // namespace pathalg

#endif  // PATHALG_TESTS_FUZZ_UTIL_H_
