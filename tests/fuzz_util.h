#ifndef PATHALG_TESTS_FUZZ_UTIL_H_
#define PATHALG_TESTS_FUZZ_UTIL_H_

/// \file fuzz_util.h
/// Shared machinery for the randomized differential tests: a seeded random
/// regex generator (restricted to the query family where the algebra's
/// per-ϕ restrictor reading provably coincides with the automaton's
/// whole-path reading — closures at the top of union branches and
/// concatenations of closures), and a trial runner that pins
///
///     CSR-backed algebra ≡ NFA product-automaton baseline
///
/// on one (graph, regex, semantics) triple. Every helper takes an explicit
/// seed or rng so CTest runs are deterministic; failure messages echo the
/// seed and regex so a red trial reproduces with one line.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "baseline/automaton_eval.h"
#include "gql/query.h"
#include "plan/evaluator.h"
#include "regex/compile.h"
#include "regex/parser.h"
#include "workload/generators.h"

namespace pathalg {
namespace fuzz {

/// One atom ":label" with a label drawn uniformly from `labels`.
inline std::string RandomAtom(std::mt19937_64& rng,
                              const std::vector<std::string>& labels) {
  std::uniform_int_distribution<size_t> dist(0, labels.size() - 1);
  return ":" + labels[dist(rng)];
}

/// A random regex from the top-closure family:
///   expr   := branch | branch "|" branch
///   branch := piece | piece "/" piece
///   piece  := inner | inner"+" | inner"*" | inner"?"
///   inner  := atom | "(" atom "/" atom ")" | "(" atom "|" atom ")"
/// Closures only wrap whole pieces and pieces only concatenate at the top,
/// so the per-ϕ and whole-path restrictor readings agree (see the proof
/// sketch atop tests/differential_test.cc).
inline std::string RandomTopClosureRegex(
    std::mt19937_64& rng, const std::vector<std::string>& labels) {
  auto inner = [&]() -> std::string {
    switch (rng() % 3) {
      case 0:
        return RandomAtom(rng, labels);
      case 1:
        return "(" + RandomAtom(rng, labels) + "/" + RandomAtom(rng, labels) +
               ")";
      default:
        return "(" + RandomAtom(rng, labels) + "|" + RandomAtom(rng, labels) +
               ")";
    }
  };
  auto piece = [&]() -> std::string {
    std::string body = inner();
    switch (rng() % 4) {
      case 0:
        return body;
      case 1:
        return body + "+";
      case 2:
        return body + "*";
      default:
        return body + "?";
    }
  };
  auto branch = [&]() -> std::string {
    std::string out = piece();
    if (rng() % 2 == 0) out += "/" + piece();
    return out;
  };
  std::string out = branch();
  if (rng() % 2 == 0) out += "|" + branch();
  return out;
}

/// Evaluates `regex_text` over `g` through the algebra and through the NFA
/// baseline and checks the results agree path-for-path. `context` is
/// prepended to failure messages (put the seed there).
inline ::testing::AssertionResult RunDifferentialTrial(
    const PropertyGraph& g, const std::string& regex_text,
    PathSemantics semantics, const std::string& context) {
  auto fail = [&](const std::string& what) {
    return ::testing::AssertionFailure()
           << context << " regex `" << regex_text << "` semantics "
           << PathSemanticsToString(semantics) << ": " << what;
  };

  auto regex = ParseRegex(regex_text);
  if (!regex.ok()) return fail("regex parse: " + regex.status().ToString());

  CompileOptions copts;
  copts.semantics = semantics;
  auto algebra = Evaluate(g, CompileRegex(*regex, copts));
  if (!algebra.ok()) return fail("algebra: " + algebra.status().ToString());
  PathSet lhs = ApplyWholePathRestrictor(*algebra, semantics);

  AutomatonEvalOptions aopts;
  aopts.semantics = semantics;
  auto automaton = EvaluateRpqAutomaton(g, *regex, aopts);
  if (!automaton.ok()) {
    return fail("automaton: " + automaton.status().ToString());
  }
  if (lhs != *automaton) {
    return fail("CSR algebra (" + std::to_string(lhs.size()) +
                " paths) != CSR automaton (" +
                std::to_string(automaton->size()) + " paths)\n  algebra: " +
                lhs.ToString(g) + "\n  automaton: " + automaton->ToString(g));
  }
  return ::testing::AssertionSuccess();
}

}  // namespace fuzz
}  // namespace pathalg

#endif  // PATHALG_TESTS_FUZZ_UTIL_H_
