// Differential tests: the algebra evaluation of compiled RPQ plans must
// agree with the independent automaton-based baseline (§8.2) across graph
// families, regexes and semantics. Regexes here have their closures at the
// top of each union branch — the shapes the paper uses — where the per-ϕ
// restrictor reading coincides with the automaton's whole-path reading.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <tuple>

#include "baseline/automaton_eval.h"
#include "fuzz_util.h"
#include "gql/query.h"
#include "plan/evaluator.h"
#include "plan/optimizer.h"
#include "regex/compile.h"
#include "regex/parser.h"
#include "workload/figure1.h"
#include "workload/generators.h"

namespace pathalg {
namespace {

RegexPtr MustParse(std::string_view text) {
  auto r = ParseRegex(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

// Regexes where the per-ϕ restrictor reading (aligned to whole-path via
// ApplyWholePathRestrictor) provably agrees with the automaton: closures
// at the top of union branches, plus concatenations of closures — a
// trail/acyclic/simple/shortest whole path splits at the concatenation
// boundary into parts that are themselves trail/acyclic/simple/shortest,
// so the join of the per-part answers covers every whole answer.
const char* kTopClosureRegexes[] = {
    ":a+",
    ":a*",
    "(:a/:b)+",
    "(:a/:b)*",
    ":a+|:b+",
    "(:a|:b)+",
    ":a|:b",
    ":a/:b",
    ":a?",
    ":a+/:b",
    ":a+/:b+",
    ":a*/:b*",
    "(:a|:b)+/:a?",
};

using DiffParam = std::tuple<PathSemantics, const char*>;

class DifferentialTest : public ::testing::TestWithParam<DiffParam> {};

TEST_P(DifferentialTest, AlgebraMatchesAutomatonOnRandomGraphs) {
  auto [semantics, regex_text] = GetParam();
  RegexPtr regex = MustParse(regex_text);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    PropertyGraph g = MakeRandomGraph(7, 12, {"a", "b"}, seed);
    CompileOptions copts;
    copts.semantics = semantics;
    auto algebra = Evaluate(g, CompileRegex(regex, copts));
    AutomatonEvalOptions aopts;
    aopts.semantics = semantics;
    auto automaton = EvaluateRpqAutomaton(g, regex, aopts);
    ASSERT_TRUE(algebra.ok()) << algebra.status().ToString();
    ASSERT_TRUE(automaton.ok()) << automaton.status().ToString();
    // Non-recursive shapes (:a/:b etc.) evaluate per-ϕ trivially; align
    // with the automaton's whole-path reading before comparing.
    PathSet lhs = ApplyWholePathRestrictor(*algebra, semantics);
    EXPECT_EQ(lhs, *automaton)
        << "seed " << seed << " regex " << regex_text << " semantics "
        << PathSemanticsToString(semantics);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FiniteSemantics, DifferentialTest,
    ::testing::Combine(::testing::Values(PathSemantics::kTrail,
                                         PathSemantics::kAcyclic,
                                         PathSemantics::kSimple,
                                         PathSemantics::kShortest),
                       ::testing::ValuesIn(kTopClosureRegexes)),
    [](const ::testing::TestParamInfo<DiffParam>& info) {
      std::string name = PathSemanticsToString(std::get<0>(info.param));
      name += "_";
      for (char c : std::string(std::get<1>(info.param))) {
        name += std::isalnum(static_cast<unsigned char>(c))
                    ? c
                    : '_';
      }
      name += std::to_string(info.index);
      return name;
    });

// Seeded fuzz loop on top of the hand-picked regexes above: ≥200 random
// graph × random regex trials per semantics, deterministic seeds, with the
// seed echoed on failure so any red trial reproduces in isolation. Regexes
// come from the same proven top-closure family; graphs from the
// Erdős–Rényi generator the fixed cases already use.
class DifferentialFuzzTest : public ::testing::TestWithParam<PathSemantics> {
};

TEST_P(DifferentialFuzzTest, RandomGraphsTimesRandomRegexes) {
  const PathSemantics semantics = GetParam();
  const std::vector<std::string> labels = {"a", "b", "c"};
  for (uint64_t trial = 1; trial <= 200; ++trial) {
    const uint64_t seed =
        0x9e3779b97f4a7c15ull ^
        (trial * 1000003ull + static_cast<uint64_t>(semantics));
    std::mt19937_64 rng(seed);
    PropertyGraph g = MakeRandomGraph(5 + rng() % 4, 8 + rng() % 6, labels,
                                      rng());
    std::string regex = fuzz::RandomTopClosureRegex(rng, labels);
    EXPECT_TRUE(fuzz::RunDifferentialTrial(
        g, regex, semantics,
        "trial " + std::to_string(trial) + " seed " + std::to_string(seed)));
    if (HasFailure()) break;  // one repro is enough
  }
}

INSTANTIATE_TEST_SUITE_P(
    FiniteSemantics, DifferentialFuzzTest,
    ::testing::Values(PathSemantics::kTrail, PathSemantics::kAcyclic,
                      PathSemantics::kSimple, PathSemantics::kShortest),
    [](const ::testing::TestParamInfo<PathSemantics>& info) {
      return PathSemanticsToString(info.param);
    });

TEST(DifferentialWalkTest, BoundedWalksAgreeOnDags) {
  // On DAGs walks terminate naturally, so no truncation mismatch between
  // the per-ϕ and whole-path budgets can occur.
  for (auto make : {+[]() { return MakeGridGraph(3, 3); },
                    +[]() { return MakeChainGraph(7, "a"); },
                    +[]() { return MakeDiamondChainGraph(3, "a"); }}) {
    PropertyGraph g = make();
    for (const char* regex_text : {":a+", ":a*", "(:a|:b)+"}) {
      RegexPtr regex = MustParse(regex_text);
      CompileOptions copts;
      copts.semantics = PathSemantics::kWalk;
      auto algebra = Evaluate(g, CompileRegex(regex, copts));
      AutomatonEvalOptions aopts;
      aopts.semantics = PathSemantics::kWalk;
      auto automaton = EvaluateRpqAutomaton(g, regex, aopts);
      // Grid graphs have labels E/S: ":a" finds nothing there; that is
      // fine — both sides must agree on emptiness too.
      ASSERT_TRUE(algebra.ok() && automaton.ok());
      EXPECT_EQ(*algebra, *automaton) << regex_text;
    }
  }
}

TEST(DifferentialWalkTest, GridWalksWithMatchingLabels) {
  PropertyGraph g = MakeGridGraph(3, 3, "a");  // uniform label
  RegexPtr regex = MustParse(":a+");
  CompileOptions copts;
  copts.semantics = PathSemantics::kWalk;
  auto algebra = Evaluate(g, CompileRegex(regex, copts));
  AutomatonEvalOptions aopts;
  auto automaton = EvaluateRpqAutomaton(g, regex, aopts);
  ASSERT_TRUE(algebra.ok() && automaton.ok());
  EXPECT_FALSE(algebra->empty());
  EXPECT_EQ(*algebra, *automaton);
}

TEST(DifferentialTest2, Figure1PaperPattern) {
  // The paper's marquee pattern on the paper's graph, all finite semantics.
  PropertyGraph g = MakeFigure1Graph();
  RegexPtr regex = MustParse("(:Knows+)|(:Likes/:Has_creator)+");
  for (PathSemantics sem :
       {PathSemantics::kTrail, PathSemantics::kAcyclic,
        PathSemantics::kSimple, PathSemantics::kShortest}) {
    CompileOptions copts;
    copts.semantics = sem;
    auto algebra = Evaluate(g, CompileRegex(regex, copts));
    AutomatonEvalOptions aopts;
    aopts.semantics = sem;
    auto automaton = EvaluateRpqAutomaton(g, regex, aopts);
    ASSERT_TRUE(algebra.ok() && automaton.ok());
    PathSet lhs = ApplyWholePathRestrictor(*algebra, sem);
    EXPECT_EQ(lhs, *automaton) << PathSemanticsToString(sem);
  }
}

TEST(DifferentialTest2, OptimizedPlansMatchAutomaton) {
  // Optimizer in the loop: optimize the compiled plan, then compare.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    PropertyGraph g = MakeRandomGraph(7, 11, {"a", "b"}, seed);
    RegexPtr regex = MustParse("(:a|:b)+");
    CompileOptions copts;
    copts.semantics = PathSemantics::kSimple;
    PlanPtr plan = PlanNode::Select(NodePropEq(1, "id", Value(0)),
                                    CompileRegex(regex, copts));
    auto optimized = Optimize(plan);
    auto lhs = Evaluate(g, optimized.plan);
    AutomatonEvalOptions aopts;
    aopts.semantics = PathSemantics::kSimple;
    aopts.source = g.FindNodeByProperty("id", Value(0));
    auto rhs = EvaluateRpqAutomaton(g, regex, aopts);
    ASSERT_TRUE(lhs.ok() && rhs.ok());
    EXPECT_EQ(*lhs, *rhs) << "seed " << seed;
  }
}

TEST(DifferentialTest2, SocialGraphAnyShortest) {
  // LDBC-like graph at a modest scale: ANY SHORTEST per pair from the
  // algebra side must pick paths of exactly the automaton's per-pair
  // minimal length.
  SocialGraphOptions sopts;
  sopts.num_persons = 24;
  sopts.num_messages = 30;
  sopts.random_knows = 20;
  PropertyGraph g = MakeSocialGraph(sopts);
  RegexPtr regex = MustParse(":Knows+");

  auto algebra = ExecuteQuery(
      g, "MATCH ANY SHORTEST WALK p = (x)-[:Knows+]->(y)");
  ASSERT_TRUE(algebra.ok()) << algebra.status().ToString();

  AutomatonEvalOptions aopts;
  aopts.semantics = PathSemantics::kShortest;
  auto automaton = EvaluateRpqAutomaton(g, regex, aopts);
  ASSERT_TRUE(automaton.ok());

  // Build per-pair minimal lengths from the automaton side.
  std::map<std::pair<NodeId, NodeId>, size_t> best;
  for (const Path& p : *automaton) {
    auto key = std::make_pair(p.First(), p.Last());
    auto it = best.find(key);
    if (it == best.end() || p.Len() < it->second) best[key] = p.Len();
  }
  // The algebra returns exactly one path per pair, of minimal length.
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Path& p : *algebra) {
    auto key = std::make_pair(p.First(), p.Last());
    ASSERT_TRUE(best.count(key)) << p.ToString(g);
    EXPECT_EQ(p.Len(), best[key]) << p.ToString(g);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate pair";
  }
  EXPECT_EQ(seen.size(), best.size());
}

}  // namespace
}  // namespace pathalg
