// The mutation subsystem's differential harness, pinning the tentpole
// contract from two directions on seeded random mutation histories:
//
//  1. Representation: DeltaOverlayGraph::Apply (the incremental merge the
//     server materializes versions through) serializes byte-identically
//     to DeltaOverlayGraph::RebuildReference (the executable spec that
//     rebuilds through GraphBuilder from scratch). The two share no
//     construction code — Apply remaps and comparison-sorts, the
//     reference re-interns and counting-sorts — so byte equality is
//     evidence, not tautology.
//
//  2. Evaluation: every engine answers queries on the merged version
//     byte-for-byte as on the rebuilt one — the optimized ϕ engine (with
//     frontier fusion) at t ∈ {1, 4}, the naive ϕ engine, and the NFA
//     product-automaton baseline — across all four bag semantics, plus
//     walk on DAG-preserving mutation histories (additions only point
//     forward in the canonical node order, so closures stay finite).
//
// 200 seeded trials per semantics; failure messages echo the seed so a
// red trial reproduces with one line.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "baseline/automaton_eval.h"
#include "fuzz_util.h"
#include "mutation/delta_log.h"
#include "mutation/overlay.h"
#include "plan/evaluator.h"
#include "regex/compile.h"
#include "regex/parser.h"
#include "storage/snapshot_writer.h"
#include "workload/generators.h"

namespace pathalg {
namespace {

const std::vector<std::string> kGraphLabels = {"a", "b", "c"};
const std::vector<std::string> kRegexLabels = {"a", "b", "c", "d"};

constexpr size_t kTrialsPerSemantics = 200;

PropertyGraph TrialBase(std::mt19937_64& rng, bool acyclic) {
  UniformMultigraphOptions opts;
  opts.num_nodes = 4 + rng() % 5;  // 4..8
  opts.num_edges = 5 + rng() % 8;  // 5..12
  opts.labels = kGraphLabels;
  opts.unlabeled_percent = 15;
  opts.acyclic = acyclic;
  opts.seed = rng();
  return MakeUniformMultigraph(opts);
}

/// Applies a random mutation history to `state`. `dag_only` restricts
/// added edges to point forward in the canonical enumeration order (base
/// nodes by ascending id, then added nodes in log order) — the acyclic
/// base generator orients edges lower→higher id, so the merged graph
/// stays a DAG and walk semantics stays finite.
void RandomMutations(std::mt19937_64& rng, mutation::DeltaState& state,
                     bool dag_only) {
  // Live node names in canonical order; base auto names are "n<id+1>".
  std::vector<std::string> order;
  const PropertyGraph& base = state.base();
  for (NodeId id = 0; id < base.num_nodes(); ++id) {
    order.push_back(std::string(base.NodeName(id)));
  }
  std::vector<std::string> live_edges;
  for (EdgeId id = 0; id < base.num_edges(); ++id) {
    live_edges.push_back(std::string(base.EdgeName(id)));
  }

  const size_t num_mutations = 3 + rng() % 8;
  size_t added = 0;
  for (size_t m = 0; m < num_mutations; ++m) {
    mutation::DeltaRecord rec;
    switch (rng() % 10) {
      case 0:
      case 1:
      case 2: {  // add-node
        rec.op = mutation::DeltaOp::kAddNode;
        if (rng() % 2 == 0) rec.name = "x" + std::to_string(++added);
        if (rng() % 3 != 0) {
          rec.label = kGraphLabels[rng() % kGraphLabels.size()];
        }
        if (rng() % 2 == 0) {
          rec.props.emplace_back("w", Value(int64_t(rng() % 100)));
        }
        mutation::DeltaRecord resolved = rec;
        ASSERT_TRUE(state.Apply(&resolved).ok());
        order.push_back(resolved.name);
        break;
      }
      case 3:
      case 4:
      case 5:
      case 6: {  // add-edge
        if (order.size() < 2) break;
        size_t si = rng() % order.size();
        size_t di = rng() % order.size();
        if (dag_only) {
          // Forward edges only (and never self-loops).
          if (si == di) break;
          if (si > di) std::swap(si, di);
        }
        rec.op = mutation::DeltaOp::kAddEdge;
        rec.src = order[si];
        rec.dst = order[di];
        if (rng() % 4 != 0) {
          rec.label = kGraphLabels[rng() % kGraphLabels.size()];
        }
        mutation::DeltaRecord resolved = rec;
        Status applied = state.Apply(&resolved);
        // A previous rm-node may have taken an endpoint with it; that
        // rejection path is itself worth exercising.
        if (applied.ok()) live_edges.push_back(resolved.name);
        break;
      }
      case 7: {  // rm-node (cascades)
        if (order.empty()) break;
        const size_t i = rng() % order.size();
        rec.op = mutation::DeltaOp::kRemoveNode;
        rec.name = order[i];
        mutation::DeltaRecord resolved = rec;
        if (state.Apply(&resolved).ok()) {
          order.erase(order.begin() + static_cast<ptrdiff_t>(i));
        }
        break;
      }
      default: {  // rm-edge
        if (live_edges.empty()) break;
        const size_t i = rng() % live_edges.size();
        rec.op = mutation::DeltaOp::kRemoveEdge;
        rec.name = live_edges[i];
        mutation::DeltaRecord resolved = rec;
        if (state.Apply(&resolved).ok()) {
          live_edges.erase(live_edges.begin() + static_cast<ptrdiff_t>(i));
        }
        break;
      }
    }
  }
}

/// Evaluates `regex_text` on `merged` and `rebuilt` under one engine
/// configuration, requiring byte-identical answers (or byte-identical
/// errors).
::testing::AssertionResult CompareEngines(const PropertyGraph& merged,
                                          const PropertyGraph& rebuilt,
                                          const std::string& regex_text,
                                          PathSemantics semantics,
                                          PhiEngine engine, size_t threads,
                                          const std::string& context) {
  auto fail = [&](const std::string& what) {
    return ::testing::AssertionFailure()
           << context << " regex `" << regex_text << "` semantics "
           << PathSemanticsToString(semantics) << " threads "
           << std::to_string(threads) << ": " << what;
  };
  auto regex = ParseRegex(regex_text);
  if (!regex.ok()) return fail("regex parse: " + regex.status().ToString());
  CompileOptions copts;
  copts.semantics = semantics;
  PlanPtr plan = CompileRegex(*regex, copts);
  EvalOptions eopts;
  eopts.engine = engine;
  eopts.threads = threads;

  Result<PathSet> lhs = Evaluate(merged, plan, eopts);
  Result<PathSet> rhs = Evaluate(rebuilt, plan, eopts);
  if (lhs.ok() != rhs.ok()) {
    return fail("merged " + lhs.status().ToString() + " vs rebuilt " +
                rhs.status().ToString());
  }
  if (!lhs.ok()) {
    if (lhs.status().ToString() != rhs.status().ToString()) {
      return fail("error mismatch: " + lhs.status().ToString() + " vs " +
                  rhs.status().ToString());
    }
    return ::testing::AssertionSuccess();
  }
  if (lhs->paths() != rhs->paths()) {
    return fail("merged (" + std::to_string(lhs->size()) +
                " paths) != rebuilt (" + std::to_string(rhs->size()) +
                " paths)\n  merged: " + lhs->ToString(merged) +
                "\n  rebuilt: " + rhs->ToString(rebuilt));
  }
  return ::testing::AssertionSuccess();
}

void RunFuzzLoop(PathSemantics semantics, bool dag_only) {
  for (uint64_t trial = 1; trial <= kTrialsPerSemantics; ++trial) {
    // Offset from the CSR/parallel/snapshot harness streams so this
    // suite explores different graphs.
    const uint64_t seed =
        trial * 86243u * 131071u + static_cast<uint64_t>(semantics);
    std::mt19937_64 rng(seed);
    const std::string context =
        "trial " + std::to_string(trial) + " seed " + std::to_string(seed);

    auto base = std::make_shared<const PropertyGraph>(
        TrialBase(rng, dag_only));
    mutation::DeltaState state(base);
    RandomMutations(rng, state, dag_only);
    if (::testing::Test::HasFailure()) break;

    PropertyGraph merged = mutation::DeltaOverlayGraph::Apply(state);
    PropertyGraph rebuilt =
        mutation::DeltaOverlayGraph::RebuildReference(state);

    // 1. The two construction paths agree to the byte.
    const std::string merged_image =
        storage::SnapshotWriter::Serialize(merged);
    ASSERT_EQ(merged_image, storage::SnapshotWriter::Serialize(rebuilt))
        << context;

    // 2. Every engine answers identically on both, t ∈ {1, 4}.
    const std::string regex =
        fuzz::RandomTopClosureRegex(rng, kRegexLabels);
    EXPECT_TRUE(CompareEngines(merged, rebuilt, regex, semantics,
                               PhiEngine::kOptimized, 1,
                               context + " [optimized]"));
    EXPECT_TRUE(CompareEngines(merged, rebuilt, regex, semantics,
                               PhiEngine::kOptimized, 4,
                               context + " [optimized]"));
    EXPECT_TRUE(CompareEngines(merged, rebuilt, regex, semantics,
                               PhiEngine::kNaive, 1, context + " [naive]"));

    // 3. The merged graph is a first-class citizen of the standing
    //    algebra ≡ automaton contract (the automaton baseline covers the
    //    fourth engine).
    EXPECT_TRUE(
        fuzz::RunDifferentialTrial(merged, regex, semantics, context));
    if (::testing::Test::HasFailure()) break;  // one repro is enough
  }
}

TEST(MutationDifferentialFuzz, Trail) {
  RunFuzzLoop(PathSemantics::kTrail, false);
}
TEST(MutationDifferentialFuzz, Acyclic) {
  RunFuzzLoop(PathSemantics::kAcyclic, false);
}
TEST(MutationDifferentialFuzz, Simple) {
  RunFuzzLoop(PathSemantics::kSimple, false);
}
TEST(MutationDifferentialFuzz, Shortest) {
  RunFuzzLoop(PathSemantics::kShortest, false);
}
TEST(MutationDifferentialFuzz, WalkOnDagPreservingMutations) {
  RunFuzzLoop(PathSemantics::kWalk, true);
}

}  // namespace
}  // namespace pathalg
