// Tests for the query-engine subsystem (src/engine): query-text
// normalization, the LRU plan cache (hit/miss/eviction), QueryEngine
// session behavior incl. error paths, the line-protocol request handler,
// and the skewed social-graph generator the replay workloads run on.

#include <gtest/gtest.h>

#include <sstream>

#include "engine/plan_cache.h"
#include "engine/query_engine.h"
#include "engine/serve.h"
#include "gql/query.h"
#include "workload/figure1.h"
#include "workload/generators.h"

namespace pathalg {
namespace engine {
namespace {

constexpr const char* kShortestTrail =
    "MATCH ANY SHORTEST TRAIL p = (x)-[:Knows+]->(y)";

// --- NormalizeQueryText ----------------------------------------------------

TEST(NormalizeQueryTextTest, CollapsesWhitespace) {
  EXPECT_EQ(NormalizeQueryText("MATCH   ALL \t WALK p = (x)-[:a]->(y)"),
            NormalizeQueryText("MATCH ALL WALK p = (x)-[:a]->(y)"));
  EXPECT_EQ(NormalizeQueryText("  MATCH ALL p = (x)-[:a]->(y)  "),
            NormalizeQueryText("MATCH ALL p = (x)-[:a]->(y)"));
}

TEST(NormalizeQueryTextTest, CanonicalizesQuotes) {
  EXPECT_EQ(NormalizeQueryText("MATCH ALL p = (?x {name:'Moe'})-[:a]->(y)"),
            NormalizeQueryText(
                "MATCH ALL p = (?x {name:\"Moe\"})-[:a]->(y)"));
}

TEST(NormalizeQueryTextTest, PreservesIdentifierCase) {
  // Labels and property keys are case-sensitive; normalization must not
  // merge them.
  EXPECT_NE(NormalizeQueryText("MATCH ALL p = (x)-[:Knows]->(y)"),
            NormalizeQueryText("MATCH ALL p = (x)-[:knows]->(y)"));
}

TEST(NormalizeQueryTextTest, NormalizedFormParsesToSameResult) {
  PropertyGraph g = MakeFigure1Graph();
  const std::string original =
      "MATCH ALL SIMPLE p = (?x {name:'Moe'})"
      "-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:\"Apu\"})";
  const std::string normalized = NormalizeQueryText(original);
  auto r1 = ExecuteQuery(g, original);
  auto r2 = ExecuteQuery(g, normalized);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(*r1, *r2);
  // Idempotent: normalizing a normalized query is a fixpoint.
  EXPECT_EQ(NormalizeQueryText(normalized), normalized);
}

TEST(NormalizeQueryTextTest, UnlexableTextIsStrippedOnly) {
  EXPECT_EQ(NormalizeQueryText("  MATCH @ bogus  "), "MATCH @ bogus");
}

// --- PlanCache -------------------------------------------------------------

PreparedQueryPtr MakeEntry(const std::string& text) {
  auto p = std::make_shared<PreparedQuery>();
  p->query = Query::Parse(text).value();
  p->effective_plan = p->query.plan();
  return p;
}

TEST(PlanCacheTest, HitMissAndStats) {
  PlanCache cache(4);
  EXPECT_EQ(cache.Get("a"), nullptr);
  cache.Put("a", MakeEntry(kShortestTrail));
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  cache.Put("a", MakeEntry(kShortestTrail));
  cache.Put("b", MakeEntry(kShortestTrail));
  ASSERT_NE(cache.Get("a"), nullptr);  // promotes "a"; "b" is now LRU
  cache.Put("c", MakeEntry(kShortestTrail));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);  // evicted
  EXPECT_NE(cache.Get("c"), nullptr);
}

TEST(PlanCacheTest, PutReplacesExistingKey) {
  PlanCache cache(2);
  cache.Put("a", MakeEntry(kShortestTrail));
  PreparedQueryPtr replacement = MakeEntry(kShortestTrail);
  cache.Put("a", replacement);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get("a"), replacement);
}

TEST(PlanCacheTest, ZeroCapacityDisablesCaching) {
  PlanCache cache(0);
  cache.Put("a", MakeEntry(kShortestTrail));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("a"), nullptr);
}

TEST(PlanCacheTest, ClearDropsEntriesKeepsStats) {
  PlanCache cache(4);
  cache.Put("a", MakeEntry(kShortestTrail));
  (void)cache.Get("a");
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.Get("a"), nullptr);
}

// --- QueryEngine -----------------------------------------------------------

TEST(QueryEngineTest, ExecuteMissThenHit) {
  QueryEngine eng(MakeFigure1Graph());
  ExecStats first, second;
  auto r1 = eng.Execute(kShortestTrail, &first);
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.result_paths, 9u);

  // Different spelling, same normalized key: must hit.
  auto r2 = eng.Execute("MATCH  ANY  SHORTEST  TRAIL p = (x)-[:Knows+]->(y)",
                        &second);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.parse_us, 0u);     // skipped on a hit
  EXPECT_EQ(second.optimize_us, 0u);  // skipped on a hit
  EXPECT_EQ(*r1, *r2);

  EXPECT_EQ(eng.session_stats().queries, 2u);
  EXPECT_EQ(eng.session_stats().errors, 0u);
  EXPECT_EQ(eng.cache().stats().hits, 1u);
  EXPECT_EQ(eng.cache().stats().misses, 1u);
}

TEST(QueryEngineTest, GraphSwapKeepsSharedCacheButInvalidatesStatsPlans) {
  // Without optimizer stats, prepared plans are graph-independent: a
  // graph swap must keep hitting the cache (the server's shared-cache
  // contract across sessions and graphs).
  QueryEngine plain(MakeFigure1Graph());
  ExecStats s1, s2;
  ASSERT_TRUE(plain.Execute(kShortestTrail, &s1).ok());
  EXPECT_FALSE(s1.cache_hit);
  plain.SetGraph(
      std::make_shared<const PropertyGraph>(MakeCycleGraph(4, "Knows")));
  ASSERT_TRUE(plain.Execute(kShortestTrail, &s2).ok());
  EXPECT_TRUE(s2.cache_hit);

  // With optimizer stats set, prepared plans bake in graph-derived
  // cardinalities, so the same swap must miss (per-graph token in the
  // cache key) — a live-mutation republish would otherwise keep serving
  // plans optimized for the pre-mutation graph.
  const GraphStats stats = GraphStats::Collect(MakeFigure1Graph());
  EngineOptions opts;
  opts.query.optimizer.stats = &stats;
  QueryEngine tuned(MakeFigure1Graph(), opts);
  ExecStats t1, t2, t3;
  ASSERT_TRUE(tuned.Execute(kShortestTrail, &t1).ok());
  EXPECT_FALSE(t1.cache_hit);
  ASSERT_TRUE(tuned.Execute(kShortestTrail, &t2).ok());
  EXPECT_TRUE(t2.cache_hit);  // same graph: still hits
  // Re-setting the *same* graph pointer must not invalidate…
  tuned.SetGraph(tuned.shared_graph());
  ASSERT_TRUE(tuned.Execute(kShortestTrail, &t3).ok());
  EXPECT_TRUE(t3.cache_hit);
  // …but a different graph must.
  ExecStats t4;
  tuned.SetGraph(
      std::make_shared<const PropertyGraph>(MakeCycleGraph(4, "Knows")));
  ASSERT_TRUE(tuned.Execute(kShortestTrail, &t4).ok());
  EXPECT_FALSE(t4.cache_hit);
}

TEST(QueryEngineTest, ExecuteFillsEvalStats) {
  QueryEngine eng(MakeFigure1Graph());
  ExecStats stats;
  ASSERT_TRUE(eng.Execute(kShortestTrail, &stats).ok());
  EXPECT_GT(stats.eval.nodes_evaluated, 0u);
  EXPECT_GT(stats.eval.peak_intermediate_paths, 0u);
  EXPECT_GT(stats.eval.op_count[static_cast<size_t>(PlanKind::kRecursive)],
            0u);
}

TEST(QueryEngineTest, ParseErrorIsCountedAndNotCached) {
  QueryEngine eng(MakeFigure1Graph());
  ExecStats stats;
  auto r = eng.Execute("SELECT * FROM paths", &stats);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
  EXPECT_EQ(eng.session_stats().errors, 1u);
  EXPECT_EQ(eng.cache().size(), 0u);  // failed parses are not cached

  // Same bad query again: still a miss (and still an error).
  auto r2 = eng.Execute("SELECT * FROM paths", &stats);
  EXPECT_FALSE(r2.ok());
  EXPECT_FALSE(stats.cache_hit);
  EXPECT_EQ(eng.session_stats().errors, 2u);
}

TEST(QueryEngineTest, EvalErrorSurfacesButPlanStaysCached) {
  // ϕWalk over a cycle with a tight budget and truncate=false errors at
  // evaluation time; the *plan* is still valid and stays cached.
  EngineOptions options;
  options.query.eval.limits.max_paths = 4;
  options.query.eval.limits.truncate = false;
  options.query.optimize = false;  // keep ϕWalk (no any-shortest rescue)
  QueryEngine eng(MakeCycleGraph(3), options);
  const char* q = "MATCH ALL WALK p = (?x)-[:Knows+]->(?y)";
  ExecStats stats;
  auto r1 = eng.Execute(q, &stats);
  EXPECT_FALSE(r1.ok());
  EXPECT_TRUE(r1.status().IsResourceExhausted()) << r1.status();
  EXPECT_EQ(eng.cache().size(), 1u);
  auto r2 = eng.Execute(q, &stats);
  EXPECT_FALSE(r2.ok());
  EXPECT_TRUE(stats.cache_hit);  // plan came from the cache; eval failed
  EXPECT_EQ(eng.session_stats().errors, 2u);
}

TEST(QueryEngineTest, PrepareExposesOptimizerProvenance) {
  QueryEngine eng(MakeFigure1Graph());
  // ANY SHORTEST over WALK triggers the any-shortest rewrite
  // (ϕWalk → ϕShortest), so provenance must be non-empty.
  auto prepared = eng.Prepare("MATCH ANY SHORTEST p = (x)-[:Knows+]->(y)");
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  EXPECT_NE((*prepared)->effective_plan, nullptr);
  EXPECT_FALSE((*prepared)->optimizer_rules.empty());
}

TEST(QueryEngineTest, ExecutePreparedSurvivesEviction) {
  EngineOptions options;
  options.plan_cache_capacity = 1;
  QueryEngine eng(MakeFigure1Graph(), options);
  auto prepared = eng.Prepare(kShortestTrail);
  ASSERT_TRUE(prepared.ok());
  // Evict it.
  ASSERT_TRUE(eng.Prepare("MATCH ALL WALK p = (?x)-[:Knows]->(?y)").ok());
  EXPECT_EQ(eng.cache().stats().evictions, 1u);
  // The shared_ptr keeps the prepared query alive and runnable.
  auto r = eng.ExecutePrepared(**prepared);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 9u);
}

TEST(QueryEngineTest, ResetGraphClearsCacheAndReusesSession) {
  QueryEngine eng(MakeFigure1Graph());
  ASSERT_TRUE(eng.Execute(kShortestTrail).ok());
  EXPECT_EQ(eng.cache().size(), 1u);
  eng.ResetGraph(MakeChainGraph(4));
  EXPECT_EQ(eng.cache().size(), 0u);
  ExecStats stats;
  auto r = eng.Execute("MATCH ALL WALK p = (?x)-[:Knows]->(?y)", &stats);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 3u);  // chain of 4 nodes = 3 single edges
  EXPECT_EQ(eng.session_stats().queries, 2u);  // session survives the swap
}

TEST(QueryEngineTest, CacheDisabledStillExecutes) {
  EngineOptions options;
  options.plan_cache_capacity = 0;
  QueryEngine eng(MakeFigure1Graph(), options);
  ExecStats s1, s2;
  ASSERT_TRUE(eng.Execute(kShortestTrail, &s1).ok());
  ASSERT_TRUE(eng.Execute(kShortestTrail, &s2).ok());
  EXPECT_FALSE(s2.cache_hit);
  EXPECT_GT(s2.parse_us + s2.optimize_us + s2.eval_us, 0u);
}

// --- Line protocol (engine/serve.h) ---------------------------------------

TEST(ServeTest, AnswersQueriesAndCommands) {
  QueryEngine eng(MakeFigure1Graph());
  std::istringstream in(
      "MATCH ANY SHORTEST TRAIL p = (x)-[:Knows+]->(y)\n"
      "\n"
      "MATCH ANY SHORTEST TRAIL p = (x)-[:Knows+]->(y)\n"
      "not a query\n"
      "!stats\n"
      "!quit\n"
      "MATCH ALL WALK p = (?x)-[:Knows]->(?y)\n");  // after quit: unread
  std::ostringstream out;
  ServeResult result = ServeLines(eng, in, out);
  EXPECT_EQ(result.requests, 5u);  // empty line skipped, post-quit unread
  EXPECT_EQ(result.ok, 4u);        // 2 queries + !stats + !quit
  EXPECT_EQ(result.errors, 1u);
  const std::string text = out.str();
  EXPECT_NE(text.find("OK 9 paths miss"), std::string::npos) << text;
  EXPECT_NE(text.find("OK 9 paths hit"), std::string::npos) << text;
  EXPECT_NE(text.find("ERR Parse error"), std::string::npos) << text;
  EXPECT_NE(text.find("STAT queries=3"), std::string::npos) << text;
  EXPECT_NE(text.find("OK bye"), std::string::npos) << text;
}

TEST(ServeTest, GraphSwapAndCacheClear) {
  QueryEngine eng(MakeFigure1Graph());
  ServeResult result;
  std::string out;
  EXPECT_TRUE(HandleRequestLine(eng, "!graph chain n=5", &out, &result));
  EXPECT_NE(out.find("OK graph 5 nodes 4 edges"), std::string::npos) << out;
  out.clear();
  EXPECT_TRUE(HandleRequestLine(eng, "!graph bogus", &out, &result));
  EXPECT_NE(out.find("ERR"), std::string::npos) << out;
  out.clear();
  EXPECT_TRUE(HandleRequestLine(eng, "!cache clear", &out, &result));
  EXPECT_NE(out.find("OK cache cleared"), std::string::npos) << out;
  out.clear();
  EXPECT_TRUE(HandleRequestLine(eng, "!frobnicate", &out, &result));
  EXPECT_NE(out.find("ERR"), std::string::npos) << out;
  out.clear();
  EXPECT_FALSE(HandleRequestLine(eng, "!quit", &out, &result));
}

// --- MakeSkewedSocialGraph -------------------------------------------------

TEST(SkewedSocialGraphTest, LabelsAndDeterminism) {
  SkewedSocialGraphOptions options;
  options.num_persons = 100;
  options.knows_per_person = 3;
  options.follows_per_person = 2;
  options.seed = 7;
  PropertyGraph g1 = MakeSkewedSocialGraph(options);
  PropertyGraph g2 = MakeSkewedSocialGraph(options);
  EXPECT_EQ(g1.num_nodes(), 100u);
  EXPECT_EQ(g1.num_edges(), 100u * (3 + 2));
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_NE(g1.FindLabel("Person"), kNoLabel);
  EXPECT_NE(g1.FindLabel("Knows"), kNoLabel);
  EXPECT_NE(g1.FindLabel("Follows"), kNoLabel);
  EXPECT_EQ(g1.EdgesWithLabel(g1.FindLabel("Knows")).size(), 300u);
  EXPECT_EQ(g1.EdgesWithLabel(g1.FindLabel("Follows")).size(), 200u);
  // Same seed -> identical edge lists.
  for (EdgeId e = 0; e < g1.num_edges(); ++e) {
    EXPECT_EQ(g1.Source(e), g2.Source(e));
    EXPECT_EQ(g1.Target(e), g2.Target(e));
  }
  for (NodeId n = 0; n < g1.num_nodes(); ++n) {
    EXPECT_EQ(g1.NodeLabel(n), "Person");
  }
}

TEST(SkewedSocialGraphTest, DegreesAreSkewed) {
  SkewedSocialGraphOptions options;
  options.num_persons = 500;
  options.knows_per_person = 4;
  options.follows_per_person = 2;
  PropertyGraph g = MakeSkewedSocialGraph(options);
  size_t max_in = 0, total_in = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    max_in = std::max(max_in, g.InEdges(n).size());
    total_in += g.InEdges(n).size();
  }
  const double mean_in =
      static_cast<double>(total_in) / static_cast<double>(g.num_nodes());
  // Preferential attachment concentrates in-degree: the biggest hub must
  // sit far above the mean (uniform targets would put it within ~2-3x).
  EXPECT_GT(static_cast<double>(max_in), 5.0 * mean_in)
      << "max_in=" << max_in << " mean_in=" << mean_in;
  EXPECT_EQ(total_in, g.num_edges());
}

}  // namespace
}  // namespace engine
}  // namespace pathalg
