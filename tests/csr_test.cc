// Property/invariant tests for the GraphBuilder → CSR construction: the
// flat offsets/edge_id arrays must be a lossless re-indexing of the edge
// list in both directions, label-partitioned slices must cover exactly the
// labelled edges, and the adversarial corners of a multigraph — empty
// graph, all-unlabelled, parallel edges, self-loops — must hold the same
// invariants. Random-graph cases sweep seeds via the uniform multigraph
// generator.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "fuzz_util.h"
#include "graph/property_graph.h"
#include "workload/figure1.h"
#include "workload/generators.h"

namespace pathalg {
namespace {

/// The CSR invariants every built graph must satisfy:
///  1. out-degree and in-degree sums both equal num_edges()
///  2. every EdgeId appears exactly once per direction, under its ρ node
///  3. the union of per-(node,label) slices is exactly the node's labelled
///     out/in run, and the union of EdgesWithLabel over all labels is
///     exactly the labelled edge set
::testing::AssertionResult CheckCsrInvariants(const PropertyGraph& g) {
  auto fail = [&](const std::string& what) {
    return ::testing::AssertionFailure() << what;
  };

  size_t out_degree_sum = 0, in_degree_sum = 0;
  std::vector<size_t> out_seen(g.num_edges(), 0), in_seen(g.num_edges(), 0);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    out_degree_sum += g.OutDegree(n);
    in_degree_sum += g.InDegree(n);
    for (EdgeId e : g.OutEdges(n)) {
      if (!g.IsValidEdge(e)) return fail("invalid edge id in out run");
      if (g.Source(e) != n) {
        return fail("edge " + std::to_string(e) + " filed under node " +
                    std::to_string(n) + " but has source " +
                    std::to_string(g.Source(e)));
      }
      out_seen[e]++;
    }
    for (EdgeId e : g.InEdges(n)) {
      if (!g.IsValidEdge(e)) return fail("invalid edge id in in run");
      if (g.Target(e) != n) {
        return fail("edge " + std::to_string(e) + " filed under node " +
                    std::to_string(n) + " but has target " +
                    std::to_string(g.Target(e)));
      }
      in_seen[e]++;
    }
    // Per-node runs are (label, id)-sorted, so label slices must tile the
    // labelled prefix of the run.
    size_t labeled_out = 0, labeled_in = 0;
    for (LabelId l = 0; l < g.num_labels(); ++l) {
      labeled_out += g.OutEdgesWithLabel(n, l).size();
      for (EdgeId e : g.OutEdgesWithLabel(n, l)) {
        if (g.EdgeLabelId(e) != l || g.Source(e) != n) {
          return fail("mislabeled edge in out slice of node " +
                      std::to_string(n));
        }
      }
      labeled_in += g.InEdgesWithLabel(n, l).size();
      for (EdgeId e : g.InEdgesWithLabel(n, l)) {
        if (g.EdgeLabelId(e) != l || g.Target(e) != n) {
          return fail("mislabeled edge in in slice of node " +
                      std::to_string(n));
        }
      }
    }
    size_t unlabeled_out = 0, unlabeled_in = 0;
    for (EdgeId e : g.OutEdges(n)) {
      if (g.EdgeLabelId(e) == kNoLabel) unlabeled_out++;
    }
    for (EdgeId e : g.InEdges(n)) {
      if (g.EdgeLabelId(e) == kNoLabel) unlabeled_in++;
    }
    if (labeled_out + unlabeled_out != g.OutDegree(n)) {
      return fail("out label slices of node " + std::to_string(n) +
                  " do not tile the run");
    }
    if (labeled_in + unlabeled_in != g.InDegree(n)) {
      return fail("in label slices of node " + std::to_string(n) +
                  " do not tile the run");
    }
  }
  if (out_degree_sum != g.num_edges()) {
    return fail("out-degree sum " + std::to_string(out_degree_sum) +
                " != num_edges " + std::to_string(g.num_edges()));
  }
  if (in_degree_sum != g.num_edges()) {
    return fail("in-degree sum " + std::to_string(in_degree_sum) +
                " != num_edges " + std::to_string(g.num_edges()));
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (out_seen[e] != 1) {
      return fail("edge " + std::to_string(e) + " appears " +
                  std::to_string(out_seen[e]) + " times in out runs");
    }
    if (in_seen[e] != 1) {
      return fail("edge " + std::to_string(e) + " appears " +
                  std::to_string(in_seen[e]) + " times in in runs");
    }
  }

  // Global label CSR: slices are id-sorted, correctly labelled, and tile
  // the labelled edge set exactly once.
  size_t labeled_total = 0;
  for (LabelId l = 0; l < g.num_labels(); ++l) {
    NeighborRange r = g.EdgesWithLabel(l);
    labeled_total += r.size();
    for (size_t i = 0; i < r.size(); ++i) {
      if (g.EdgeLabelId(r[i]) != l) {
        return fail("EdgesWithLabel(" + std::string(g.LabelName(l)) +
                    ") holds a foreign edge");
      }
      if (i > 0 && r[i - 1] >= r[i]) {
        return fail("EdgesWithLabel(" + std::string(g.LabelName(l)) +
                    ") not strictly id-sorted");
      }
    }
  }
  size_t labeled_want = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.EdgeLabelId(e) != kNoLabel) labeled_want++;
  }
  if (labeled_total != labeled_want) {
    return fail("label CSR covers " + std::to_string(labeled_total) +
                " edges, want " + std::to_string(labeled_want));
  }
  return ::testing::AssertionSuccess();
}

TEST(CsrInvariantTest, Figure1Graph) {
  PropertyGraph g = MakeFigure1Graph();
  EXPECT_TRUE(CheckCsrInvariants(g));
}

TEST(CsrInvariantTest, EmptyGraph) {
  PropertyGraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_TRUE(CheckCsrInvariants(g));
  // Even unbuilt/empty graphs answer adjacency queries with the canonical
  // empty range rather than faulting.
  EXPECT_TRUE(g.EdgesWithLabel(kNoLabel).empty());
  EXPECT_TRUE(g.EdgesWithLabel(0).empty());
}

TEST(CsrInvariantTest, NodesButNoEdges) {
  GraphBuilder b;
  b.AddNode("A");
  b.AddNode("B");
  PropertyGraph g = b.Build();
  EXPECT_TRUE(CheckCsrInvariants(g));
  EXPECT_TRUE(g.OutEdges(0).empty());
  EXPECT_TRUE(g.InEdges(1).empty());
  EXPECT_EQ(g.OutDegree(0), 0u);
}

TEST(CsrInvariantTest, AllUnlabeledEdges) {
  GraphBuilder b;
  NodeId a = b.AddNode();
  NodeId c = b.AddNode();
  ASSERT_TRUE(b.AddEdge(a, c).ok());
  ASSERT_TRUE(b.AddEdge(c, a).ok());
  ASSERT_TRUE(b.AddEdge(a, a).ok());  // unlabelled self-loop
  PropertyGraph g = b.Build();
  EXPECT_TRUE(CheckCsrInvariants(g));
  EXPECT_EQ(g.num_labels(), 0u);
  EXPECT_EQ(g.OutDegree(a), 2u);
  EXPECT_EQ(g.InDegree(a), 2u);
  EXPECT_TRUE(g.EdgesWithLabel(kNoLabel).empty());
}

TEST(CsrInvariantTest, ParallelEdges) {
  GraphBuilder b;
  NodeId a = b.AddNode("N");
  NodeId c = b.AddNode("N");
  // Three parallel a→c edges, two sharing a label.
  EdgeId e1 = *b.AddEdge(a, c, "x");
  EdgeId e2 = *b.AddEdge(a, c, "y");
  EdgeId e3 = *b.AddEdge(a, c, "x");
  PropertyGraph g = b.Build();
  EXPECT_TRUE(CheckCsrInvariants(g));
  EXPECT_EQ(g.OutDegree(a), 3u);
  EXPECT_EQ(g.InDegree(c), 3u);
  LabelId x = g.FindLabel("x");
  NeighborRange xs = g.OutEdgesWithLabel(a, x);
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[0], e1);
  EXPECT_EQ(xs[1], e3);
  EXPECT_EQ(g.OutEdgesWithLabel(a, g.FindLabel("y")).size(), 1u);
  EXPECT_EQ(g.OutEdgesWithLabel(a, g.FindLabel("y"))[0], e2);
  EXPECT_EQ(g.EdgesWithLabel(x).size(), 2u);
}

TEST(CsrInvariantTest, SelfLoops) {
  GraphBuilder b;
  NodeId a = b.AddNode("N");
  EdgeId loop1 = *b.AddEdge(a, a, "x");
  EdgeId loop2 = *b.AddEdge(a, a, "x");
  PropertyGraph g = b.Build();
  EXPECT_TRUE(CheckCsrInvariants(g));
  // A self-loop counts once in each direction.
  EXPECT_EQ(g.OutDegree(a), 2u);
  EXPECT_EQ(g.InDegree(a), 2u);
  NeighborRange r = g.OutEdgesWithLabel(a, g.FindLabel("x"));
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], loop1);
  EXPECT_EQ(r[1], loop2);
}

TEST(CsrInvariantTest, PerNodeRunsAreLabelSorted) {
  GraphBuilder b;
  NodeId hub = b.AddNode("Hub");
  NodeId t = b.AddNode("T");
  // Insert with labels interleaved and one unlabelled edge in the middle;
  // the CSR run must come out grouped by label with kNoLabel last.
  ASSERT_TRUE(b.AddEdge(hub, t, "z").ok());
  ASSERT_TRUE(b.AddEdge(hub, t, "a").ok());
  ASSERT_TRUE(b.AddEdge(hub, t).ok());
  ASSERT_TRUE(b.AddEdge(hub, t, "z").ok());
  ASSERT_TRUE(b.AddEdge(hub, t, "a").ok());
  PropertyGraph g = b.Build();
  EXPECT_TRUE(CheckCsrInvariants(g));
  NeighborRange run = g.OutEdges(hub);
  ASSERT_EQ(run.size(), 5u);
  std::vector<LabelId> run_labels;
  for (EdgeId e : run) run_labels.push_back(g.EdgeLabelId(e));
  EXPECT_TRUE(std::is_sorted(run_labels.begin(), run_labels.end()));
  EXPECT_EQ(run_labels.back(), kNoLabel);
}

// Regression (was: relied on edges_by_label_ vector bounds): unknown label
// ids — never interned, kNoLabel, or plain out of range — all get the one
// canonical empty range from every label-indexed accessor.
TEST(CsrInvariantTest, UnknownAndNoLabelGetCanonicalEmptyRange) {
  PropertyGraph g = MakeFigure1Graph();
  EXPECT_TRUE(g.EdgesWithLabel(kNoLabel).empty());
  EXPECT_TRUE(g.EdgesWithLabel(g.FindLabel("NoSuchLabel")).empty());
  EXPECT_TRUE(g.EdgesWithLabel(static_cast<LabelId>(g.num_labels())).empty());
  EXPECT_TRUE(g.EdgesWithLabel(kNoLabel - 1).empty());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_TRUE(g.OutEdgesWithLabel(n, kNoLabel).empty());
    EXPECT_TRUE(g.InEdgesWithLabel(n, kNoLabel).empty());
    EXPECT_TRUE(
        g.OutEdgesWithLabel(n, static_cast<LabelId>(g.num_labels())).empty());
  }
  // Out-of-range nodes too (defensive: kInvalidId must not alias node 0).
  EXPECT_TRUE(g.OutEdges(kInvalidId).empty());
  EXPECT_TRUE(g.InEdges(kInvalidId).empty());
  EXPECT_TRUE(g.OutEdgesWithLabel(kInvalidId, g.FindLabel("Knows")).empty());
}

TEST(CsrInvariantTest, RandomMultigraphSweep) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    UniformMultigraphOptions opts;
    opts.num_nodes = 1 + seed % 9;
    opts.num_edges = seed % 23;
    opts.unlabeled_percent = (seed % 3) * 25;
    opts.seed = seed;
    PropertyGraph g = MakeUniformMultigraph(opts);
    EXPECT_TRUE(CheckCsrInvariants(g)) << "seed " << seed;
  }
}

TEST(CsrInvariantTest, SkewedSocialGraph) {
  SkewedSocialGraphOptions opts;
  opts.num_persons = 120;
  PropertyGraph g = MakeSkewedSocialGraph(opts);
  EXPECT_TRUE(CheckCsrInvariants(g));
}

TEST(NeighborRangeTest, ViewSemantics) {
  PropertyGraph g = MakeChainGraph(3, "k");
  NeighborRange r = g.OutEdges(0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.front(), r.back());
  EXPECT_EQ(r[0], r.front());
  EXPECT_EQ(r.end() - r.begin(), 1);
  // Default range is canonical empty.
  NeighborRange empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.begin(), empty.end());
}

}  // namespace
}  // namespace pathalg
