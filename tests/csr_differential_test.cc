// The randomized differential harness that guards the CSR adjacency
// layout: seeded random multigraphs (parallel edges, self-loops,
// unlabelled edges) × random top-closure regexes, evaluated two ways —
// CSR-backed algebra plans and the NFA product-automaton baseline —
// which must agree path-for-path under every semantics. All seeds are
// fixed, so CTest runs are deterministic; failing trials echo their seed
// and regex.
//
// Trial budget: ≥200 graph×query trials per semantics (walk runs on
// random DAGs, where its answer sets are finite).

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "algebra/core_ops.h"
#include "fuzz_util.h"
#include "path/path_index.h"
#include "path/path_ops.h"
#include "plan/evaluator.h"
#include "workload/generators.h"

namespace pathalg {
namespace {

// The regex label pool deliberately includes "d", which the graph
// generator never uses — absent labels must match nothing in every layout.
const std::vector<std::string> kRegexLabels = {"a", "b", "c", "d"};
const std::vector<std::string> kGraphLabels = {"a", "b", "c"};

constexpr size_t kTrialsPerSemantics = 220;

PropertyGraph TrialGraph(std::mt19937_64& rng, bool acyclic) {
  UniformMultigraphOptions opts;
  opts.num_nodes = 4 + rng() % 5;   // 4..8
  opts.num_edges = 6 + rng() % 9;   // 6..14
  opts.labels = kGraphLabels;
  opts.unlabeled_percent = 15;
  opts.acyclic = acyclic;
  opts.seed = rng();
  return MakeUniformMultigraph(opts);
}

void RunFuzzLoop(PathSemantics semantics, bool acyclic_graphs) {
  for (uint64_t trial = 1; trial <= kTrialsPerSemantics; ++trial) {
    // Everything about the trial derives from this one seed.
    const uint64_t seed =
        trial * 2654435761u + static_cast<uint64_t>(semantics);
    std::mt19937_64 rng(seed);
    PropertyGraph g = TrialGraph(rng, acyclic_graphs);
    std::string regex = fuzz::RandomTopClosureRegex(rng, kRegexLabels);
    EXPECT_TRUE(fuzz::RunDifferentialTrial(
        g, regex, semantics,
        "trial " + std::to_string(trial) + " seed " + std::to_string(seed)));
    if (::testing::Test::HasFailure()) break;  // one repro is enough
  }
}

TEST(CsrDifferentialFuzz, Trail) { RunFuzzLoop(PathSemantics::kTrail, false); }

TEST(CsrDifferentialFuzz, Acyclic) {
  RunFuzzLoop(PathSemantics::kAcyclic, false);
}

TEST(CsrDifferentialFuzz, Simple) {
  RunFuzzLoop(PathSemantics::kSimple, false);
}

TEST(CsrDifferentialFuzz, Shortest) {
  RunFuzzLoop(PathSemantics::kShortest, false);
}

TEST(CsrDifferentialFuzz, WalkOnRandomDags) {
  // Walks are only finite on DAGs; cyclic walk divergence is covered by
  // the budget tests in recursive_test.cc.
  RunFuzzLoop(PathSemantics::kWalk, true);
}

// The evaluator's label-scan fast path (σ_{label(edge(1))=L}(Edges(G)) →
// CSR slice) must be invisible: same paths as the generic Select over the
// full edge scan, for present, absent and unlabelled labels.
TEST(CsrDifferentialFuzz, LabelScanFastPathMatchesGenericSelect) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    std::mt19937_64 rng(seed);
    PropertyGraph g = TrialGraph(rng, false);
    for (const std::string& label : kRegexLabels) {
      PlanPtr plan =
          PlanNode::Select(EdgeLabelEq(1, label), PlanNode::EdgesScan());
      EvalStats stats;
      EvalOptions opts;
      opts.stats = &stats;
      auto fast = Evaluate(g, plan, opts);
      ASSERT_TRUE(fast.ok()) << fast.status().ToString();
      EXPECT_EQ(stats.label_scan_hits, 1u);
      EXPECT_EQ(stats.op_count[static_cast<size_t>(PlanKind::kSelect)], 1u);
      EXPECT_EQ(stats.op_count[static_cast<size_t>(PlanKind::kEdgesScan)],
                1u);
      // Reference: the algebra Select function over the full edge scan —
      // no plan, no fast path.
      PathSet slow = Select(g, EdgesOf(g), *EdgeLabelEq(1, label));
      EXPECT_EQ(*fast, slow) << "seed " << seed << " label " << label;
    }
  }
}

// The dense First(p)-index underneath ⋈ must agree with a brute-force
// nested-loop join on random path sets.
TEST(CsrDifferentialFuzz, DenseJoinIndexMatchesBruteForce) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    std::mt19937_64 rng(seed);
    PropertyGraph g = TrialGraph(rng, false);
    PathSet s1 = EdgesOf(g);
    PathSet s2;
    // A random subset of edges plus some zero-length paths.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (rng() % 2 == 0) s2.Insert(Path::EdgeOf(g, e));
    }
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      if (rng() % 3 == 0) s2.Insert(Path::SingleNode(n));
    }
    PathSet brute;
    for (const Path& p1 : s1) {
      for (const Path& p2 : s2) {
        if (p1.Last() == p2.First()) {
          brute.Insert(Path::ConcatUnchecked(p1, p2));
        }
      }
    }
    EXPECT_EQ(Join(s1, s2), brute) << "seed " << seed;
  }
}

TEST(PathFirstIndexTest, BucketsMatchInputOrder) {
  PropertyGraph g = MakeChainGraph(4, "k");
  PathSet s = EdgesOf(g);
  PathFirstIndex idx(s);
  EXPECT_EQ(idx.size(), s.size());
  size_t total = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (const Path* p : idx.ForFirst(n)) {
      EXPECT_EQ(p->First(), n);
      ++total;
    }
  }
  EXPECT_EQ(total, s.size());
  // Out-of-range and empty buckets.
  EXPECT_TRUE(idx.ForFirst(kInvalidId).empty());
  EXPECT_TRUE(idx.ForFirst(3).empty());  // chain tail starts no edge
  EXPECT_TRUE(PathFirstIndex(PathSet()).ForFirst(0).empty());
}

}  // namespace
}  // namespace pathalg
