// Tests for §2.3 sequenced path queries: concatenation of independently
// selected/restricted sub-queries with an outer selector–restrictor over
// the concatenated answer set, plus the union form.

#include <gtest/gtest.h>

#include "algebra/core_ops.h"
#include "algebra/recursive.h"
#include "gql/sequence.h"
#include "path/path_ops.h"
#include "plan/evaluator.h"
#include "regex/parser.h"
#include "workload/figure1.h"

namespace pathalg {
namespace {

RegexPtr Re(const char* text) {
  auto r = ParseRegex(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

class SequenceTest : public ::testing::Test {
 protected:
  void SetUp() override { g_ = MakeFigure1Graph(&ids_); }
  PropertyGraph g_;
  Figure1Ids ids_;
};

TEST_F(SequenceTest, RejectsDegenerateInputs) {
  EXPECT_TRUE(BuildSequencePlan({}).status().IsInvalidArgument());
  SequenceQuery q;
  q.parts.push_back({{SelectorKind::kAll, 1}, PathSemantics::kWalk,
                     nullptr, nullptr});
  EXPECT_TRUE(BuildSequencePlan(q).status().IsInvalidArgument());
}

TEST_F(SequenceTest, SinglePartEqualsPlainQuery) {
  SequenceQuery q;
  q.selector = {SelectorKind::kAll, 1};
  q.restrictor = PathSemantics::kWalk;
  q.parts.push_back({{SelectorKind::kAll, 1}, PathSemantics::kTrail,
                     Re(":Knows+"), nullptr});
  auto plan = BuildSequencePlan(q);
  ASSERT_TRUE(plan.ok());
  auto result = Evaluate(g_, *plan);
  ASSERT_TRUE(result.ok());
  auto direct = Recursive(
      Select(g_, EdgesOf(g_), *EdgeLabelEq(1, "Knows")),
      PathSemantics::kTrail);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*result, *direct);
}

TEST_F(SequenceTest, PaperExampleTrailsThenShortestWalks) {
  // §2.3: "ask for all trails connecting nodes n1 and n2, then all
  // shortest walks connecting n2 to n3, and require that the entire
  // concatenated path between n1 and n3 be a shortest trail."
  SequenceQuery q;
  q.selector = {SelectorKind::kAllShortest, 1};  // "shortest" of the pair
  q.restrictor = PathSemantics::kTrail;          // "... trail"
  q.parts.push_back(
      {{SelectorKind::kAll, 1},
       PathSemantics::kTrail,
       Re(":Knows+"),
       Condition::And(FirstPropEq("name", Value("Moe")),
                      LastPropEq("name", Value("Homer")))});
  q.parts.push_back(
      {{SelectorKind::kAllShortest, 1},
       PathSemantics::kWalk,
       Re(":Knows+"),
       Condition::And(FirstPropEq("name", Value("Homer")),
                      LastPropEq("name", Value("Lisa")))});
  auto plan = BuildSequencePlan(q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The part-2 ϕWalk is guarded by the ALL SHORTEST pipeline; give the
  // evaluator a budget in case the optimizer is disabled.
  EvalOptions opts;
  opts.limits.max_path_length = 8;
  opts.limits.truncate = true;
  auto result = Evaluate(g_, *plan, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Trails n1→n2: (n1,e1,n2) and (n1,e1,n2,e2,n3,e3,n2). Shortest walk
  // n2→n3: (n2,e2,n3). Concatenations: lengths 2 and 4; both are trails;
  // ALL SHORTEST keeps the length-2 one.
  PathSet expected;
  expected.Insert(Path({ids_.n1, ids_.n2, ids_.n3}, {ids_.e1, ids_.e2}));
  EXPECT_EQ(*result, expected);
}

TEST_F(SequenceTest, OuterRestrictorFiltersNonTrails) {
  // Knows+ trails (n1→n2) ⋈ Knows+ trails (n2→n2 cycle): the concatenation
  // repeats edges unless filtered by the outer ρTrail.
  SequenceQuery q;
  q.selector = {SelectorKind::kAll, 1};
  q.restrictor = PathSemantics::kTrail;
  q.parts.push_back({{SelectorKind::kAll, 1},
                     PathSemantics::kTrail,
                     Re(":Knows+"),
                     LastPropEq("name", Value("Homer"))});
  q.parts.push_back({{SelectorKind::kAll, 1},
                     PathSemantics::kTrail,
                     Re(":Knows+"),
                     LastPropEq("name", Value("Homer"))});
  auto plan = BuildSequencePlan(q);
  ASSERT_TRUE(plan.ok());
  auto result = Evaluate(g_, *plan);
  ASSERT_TRUE(result.ok());
  for (const Path& p : *result) {
    EXPECT_TRUE(p.IsTrail()) << p.ToString(g_);
    EXPECT_EQ(g_.NodeName(p.Last()), "n2");
  }
  // Without the outer restrictor some concatenations repeat edges.
  SequenceQuery lax = q;
  lax.restrictor = PathSemantics::kWalk;
  auto lax_plan = BuildSequencePlan(lax);
  ASSERT_TRUE(lax_plan.ok());
  auto lax_result = Evaluate(g_, *lax_plan);
  ASSERT_TRUE(lax_result.ok());
  EXPECT_GT(lax_result->size(), result->size());
}

TEST_F(SequenceTest, ThreePartSequence) {
  // n1 → n2 → n3 → n4 through single Knows edges, assembled from three
  // one-hop parts; the outer ACYCLIC keeps the simple chain.
  SequenceQuery q;
  q.selector = {SelectorKind::kAll, 1};
  q.restrictor = PathSemantics::kAcyclic;
  for (const char* target : {"Homer", "Lisa", "Apu"}) {
    q.parts.push_back({{SelectorKind::kAll, 1},
                       PathSemantics::kWalk,
                       Re(":Knows"),
                       LastPropEq("name", Value(target))});
  }
  auto plan = BuildSequencePlan(q);
  ASSERT_TRUE(plan.ok());
  auto result = Evaluate(g_, *plan);
  ASSERT_TRUE(result.ok());
  // n?→n2→n3→n4: (n1,e1,n2,e2,n3,?)… n3 -Knows-> n4 does not exist; the
  // only Knows edge into n4 is e4 from n2. So the sequence is empty.
  EXPECT_TRUE(result->empty());

  // Adjust: n1 → n2 (Homer), n2 → n3 (Lisa), n3 → n2?? — use targets that
  // exist: Homer, Lisa, Homer gives (…,n2,e2,n3,e3,n2) which repeats n2 →
  // killed by ACYCLIC.
  SequenceQuery q2;
  q2.selector = {SelectorKind::kAll, 1};
  q2.restrictor = PathSemantics::kAcyclic;
  for (const char* target : {"Homer", "Lisa", "Homer"}) {
    q2.parts.push_back({{SelectorKind::kAll, 1},
                        PathSemantics::kWalk,
                        Re(":Knows"),
                        LastPropEq("name", Value(target))});
  }
  auto plan2 = BuildSequencePlan(q2);
  ASSERT_TRUE(plan2.ok());
  auto result2 = Evaluate(g_, *plan2);
  ASSERT_TRUE(result2.ok());
  EXPECT_TRUE(result2->empty());
  // With SIMPLE the closed triangle n2→n3→n2 IS allowed when it starts at
  // n2: parts Lisa, Homer from n2: (n2,e2,n3,e3,n2) — simple closed.
  SequenceQuery q3;
  q3.selector = {SelectorKind::kAll, 1};
  q3.restrictor = PathSemantics::kSimple;
  q3.parts.push_back({{SelectorKind::kAll, 1},
                      PathSemantics::kWalk,
                      Re(":Knows"),
                      LastPropEq("name", Value("Lisa"))});
  q3.parts.push_back({{SelectorKind::kAll, 1},
                      PathSemantics::kWalk,
                      Re(":Knows"),
                      LastPropEq("name", Value("Homer"))});
  auto plan3 = BuildSequencePlan(q3);
  ASSERT_TRUE(plan3.ok());
  auto result3 = Evaluate(g_, *plan3);
  ASSERT_TRUE(result3.ok());
  EXPECT_TRUE(result3->Contains(
      Path({ids_.n2, ids_.n3, ids_.n2}, {ids_.e2, ids_.e3})));
}

TEST_F(SequenceTest, UnionOfSequenceAnswers) {
  // §2.3: "Another option allowed by GQL is taking an union of such answer
  // sets, with the usual set-union semantics."
  SequenceQuery knows;
  knows.selector = {SelectorKind::kAll, 1};
  knows.restrictor = PathSemantics::kSimple;
  knows.parts.push_back({{SelectorKind::kAll, 1},
                         PathSemantics::kSimple,
                         Re(":Knows+"),
                         FirstPropEq("name", Value("Moe"))});
  SequenceQuery likes;
  likes.selector = {SelectorKind::kAll, 1};
  likes.restrictor = PathSemantics::kSimple;
  likes.parts.push_back({{SelectorKind::kAll, 1},
                         PathSemantics::kSimple,
                         Re("(:Likes/:Has_creator)+"),
                         FirstPropEq("name", Value("Moe"))});
  auto p1 = BuildSequencePlan(knows);
  auto p2 = BuildSequencePlan(likes);
  ASSERT_TRUE(p1.ok() && p2.ok());
  PlanPtr unioned = PlanNode::Union(*p1, *p2);
  auto result = Evaluate(g_, unioned);
  ASSERT_TRUE(result.ok());
  auto r1 = Evaluate(g_, *p1);
  auto r2 = Evaluate(g_, *p2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(*result, Union(*r1, *r2));
  EXPECT_FALSE(result->empty());
}

TEST_F(SequenceTest, PlanShapeHasRestrictAndTranslate) {
  SequenceQuery q;
  q.selector = {SelectorKind::kAnyShortest, 1};
  q.restrictor = PathSemantics::kTrail;
  q.parts.push_back({{SelectorKind::kAll, 1}, PathSemantics::kTrail,
                     Re(":Knows+"), nullptr});
  q.parts.push_back({{SelectorKind::kAll, 1}, PathSemantics::kWalk,
                     Re(":Likes"), nullptr});
  auto plan = BuildSequencePlan(q);
  ASSERT_TRUE(plan.ok());
  std::string algebra = (*plan)->ToAlgebraString();
  EXPECT_NE(algebra.find("ρ[TRAIL]"), std::string::npos) << algebra;
  EXPECT_NE(algebra.find("π(*,*,1)(τ[A](γ[ST]"), std::string::npos)
      << algebra;
  EXPECT_TRUE((*plan)->Validate().ok());
}

}  // namespace
}  // namespace pathalg
