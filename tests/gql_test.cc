// Tests for the GQL surface: lexer, both parser forms (§2.3 standard and
// §7.1 extended), the Table 7 selector translations, the §7.2 plan text,
// and the end-to-end Query facade on the Figure 1 graph.

#include <gtest/gtest.h>

#include "gql/lexer.h"
#include "gql/query.h"
#include "gql/translate.h"
#include "workload/figure1.h"

namespace pathalg {
namespace {

ParsedQuery MustParseQuery(std::string_view text) {
  auto r = ParseQuery(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : ParsedQuery{};
}

TEST(LexerTest, TokenKinds) {
  auto toks = Tokenize("MATCH p = (?x {name:\"Moe\", age:30})-[:a+]->(y)");
  ASSERT_TRUE(toks.ok());
  EXPECT_TRUE((*toks)[0].IsKeyword("match"));
  EXPECT_EQ((*toks)[1].text, "p");
  EXPECT_TRUE((*toks)[2].IsSymbol("="));
  // String token contents have quotes stripped.
  bool found_moe = false, found_30 = false, found_edge_open = false;
  for (const Token& t : *toks) {
    if (t.kind == TokKind::kString && t.text == "Moe") found_moe = true;
    if (t.kind == TokKind::kInt && t.int_value == 30) found_30 = true;
    if (t.IsSymbol("-[")) found_edge_open = true;
  }
  EXPECT_TRUE(found_moe);
  EXPECT_TRUE(found_30);
  EXPECT_TRUE(found_edge_open);
  EXPECT_EQ(toks->back().kind, TokKind::kEnd);
}

TEST(LexerTest, MultiCharSymbolsAndErrors) {
  auto toks = Tokenize("a != b <> c <= d >= e ]->");
  ASSERT_TRUE(toks.ok());
  int multi = 0;
  for (const Token& t : *toks) {
    if (t.IsSymbol("!=") || t.IsSymbol("<>") || t.IsSymbol("<=") ||
        t.IsSymbol(">=") || t.IsSymbol("]->")) {
      ++multi;
    }
  }
  EXPECT_EQ(multi, 5);
  EXPECT_TRUE(Tokenize("\"unterminated").status().IsParseError());
  EXPECT_TRUE(Tokenize("m@tch").status().IsParseError());
}

TEST(GqlParserTest, StandardFormDefaults) {
  ParsedQuery q = MustParseQuery("MATCH p = (?x)-[:Knows+]->(?y)");
  EXPECT_FALSE(q.extended);
  EXPECT_EQ(q.selector.kind, SelectorKind::kAll);
  EXPECT_EQ(q.restrictor, PathSemantics::kWalk);
  EXPECT_EQ(q.path_var, "p");
  EXPECT_EQ(q.source.var, "x");
  EXPECT_EQ(q.target.var, "y");
  ASSERT_NE(q.regex, nullptr);
  EXPECT_EQ(q.regex->kind(), RegexKind::kPlus);
  EXPECT_EQ(q.where, nullptr);
}

TEST(GqlParserTest, SelectorsParse) {
  struct Case {
    const char* text;
    SelectorKind kind;
    size_t k;
  };
  for (const Case& c : std::vector<Case>{
           {"MATCH ALL TRAIL p = (x)-[:a]->(y)", SelectorKind::kAll, 1},
           {"MATCH ANY SHORTEST WALK p = (x)-[:a]->(y)",
            SelectorKind::kAnyShortest, 1},
           {"MATCH ALL SHORTEST TRAIL p = (x)-[:a]->(y)",
            SelectorKind::kAllShortest, 1},
           {"MATCH ANY SIMPLE p = (x)-[:a]->(y)", SelectorKind::kAny, 1},
           {"MATCH ANY 3 ACYCLIC p = (x)-[:a]->(y)", SelectorKind::kAnyK, 3},
           {"MATCH SHORTEST 2 WALK p = (x)-[:a]->(y)",
            SelectorKind::kShortestK, 2},
           {"MATCH SHORTEST 2 GROUP WALK p = (x)-[:a]->(y)",
            SelectorKind::kShortestKGroup, 2}}) {
    ParsedQuery q = MustParseQuery(c.text);
    EXPECT_EQ(q.selector.kind, c.kind) << c.text;
    if (c.k != 1) {
      EXPECT_EQ(q.selector.k, c.k) << c.text;
    }
  }
}

TEST(GqlParserTest, RestrictorsParse) {
  EXPECT_EQ(MustParseQuery("MATCH WALK p = (x)-[:a]->(y)").restrictor,
            PathSemantics::kWalk);
  EXPECT_EQ(MustParseQuery("MATCH TRAIL p = (x)-[:a]->(y)").restrictor,
            PathSemantics::kTrail);
  EXPECT_EQ(MustParseQuery("MATCH SIMPLE p = (x)-[:a]->(y)").restrictor,
            PathSemantics::kSimple);
  EXPECT_EQ(MustParseQuery("MATCH ACYCLIC p = (x)-[:a]->(y)").restrictor,
            PathSemantics::kAcyclic);
}

TEST(GqlParserTest, NodePatternProperties) {
  ParsedQuery q = MustParseQuery(
      "MATCH p = (?x {name:\"Moe\"})-[:Knows+]->(?y {name:\"Apu\"})");
  ASSERT_EQ(q.source.properties.size(), 1u);
  EXPECT_EQ(q.source.properties[0].first, "name");
  EXPECT_EQ(q.source.properties[0].second, Value("Moe"));
  ASSERT_EQ(q.target.properties.size(), 1u);
  EXPECT_EQ(q.target.properties[0].second, Value("Apu"));
  ConditionPtr cond = q.EndpointCondition();
  ASSERT_NE(cond, nullptr);
  EXPECT_EQ(cond->ToString(),
            "(first.name = \"Moe\" AND last.name = \"Apu\")");
}

TEST(GqlParserTest, NodeLabelPatterns) {
  ParsedQuery q = MustParseQuery(
      "MATCH p = (?x:Person {name:\"Moe\"})-[:Likes]->(?y:Message)");
  EXPECT_EQ(q.source.label, "Person");
  EXPECT_EQ(q.target.label, "Message");
  ConditionPtr cond = q.EndpointCondition();
  ASSERT_NE(cond, nullptr);
  EXPECT_EQ(cond->ToString(),
            "((label(first) = \"Person\" AND first.name = \"Moe\") AND "
            "label(last) = \"Message\")");
  // End-to-end on Figure 1: Moe likes one message (n6).
  Figure1Ids ids;
  PropertyGraph g = MakeFigure1Graph(&ids);
  auto r = ExecuteQuery(
      g, "MATCH ALL WALK p = (?x:Person {name:\"Moe\"})-[:Likes]->"
         "(?y:Message)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
  // A label that matches nothing:
  auto none = ExecuteQuery(
      g, "MATCH ALL WALK p = (?x:Robot)-[:Likes]->(?y)");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  // Malformed label:
  EXPECT_TRUE(
      ParseQuery("MATCH p = (x:)-[:a]->(y)").status().IsParseError());
}

TEST(GqlParserTest, WhereConditionParses) {
  ParsedQuery q = MustParseQuery(
      "MATCH TRAIL p = (x)-[:Knows+]->(y) "
      "WHERE label(first) = \"Person\" AND len() >= 2 OR "
      "NOT (node(2).name = \"Homer\")");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->ToString(),
            "((label(first) = \"Person\" AND len() >= 2) OR "
            "NOT (node(2).name = \"Homer\"))");
}

TEST(GqlParserTest, ExtendedFormParses) {
  // The paper's §7.1 example query.
  ParsedQuery q = MustParseQuery(
      "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS "
      "TRAIL p = (?x)-[(:Knows)*]->(?y) "
      "GROUP BY TARGET ORDER BY PATH");
  EXPECT_TRUE(q.extended);
  EXPECT_FALSE(q.projection.partitions.has_value());
  EXPECT_FALSE(q.projection.groups.has_value());
  EXPECT_EQ(q.projection.paths, 1u);
  EXPECT_EQ(q.restrictor, PathSemantics::kTrail);
  EXPECT_EQ(q.group_by, GroupKey::kT);
  ASSERT_TRUE(q.order_by.has_value());
  EXPECT_EQ(*q.order_by, OrderKey::kA);
  // Its plan is π(*,*,1)(τA(γT(ϕTrail(σKnows(E)) ∪ Nodes))).
  PlanPtr plan = q.ToPlan();
  EXPECT_EQ(plan->ToAlgebraString(),
            "π(*,*,1)(τ[A](γ[T]((ϕ[TRAIL](σ[label(edge(1)) = \"Knows\"]"
            "(Edges(G))) ∪ Nodes(G)))))");
}

TEST(GqlParserTest, ExtendedFormShortestRestrictorAndKeys) {
  ParsedQuery q = MustParseQuery(
      "MATCH 2 PARTITIONS 1 GROUPS ALL PATHS SHORTEST "
      "p = (x)-[:Knows+]->(y) GROUP BY SOURCE TARGET LENGTH "
      "ORDER BY PARTITION GROUP PATH");
  EXPECT_EQ(q.restrictor, PathSemantics::kShortest);
  EXPECT_EQ(q.projection.partitions, 2u);
  EXPECT_EQ(q.projection.groups, 1u);
  EXPECT_EQ(q.group_by, GroupKey::kSTL);
  EXPECT_EQ(*q.order_by, OrderKey::kPGA);
}

TEST(GqlParserTest, ParseErrors) {
  EXPECT_TRUE(ParseQuery("SELECT * FROM t").status().IsParseError());
  EXPECT_TRUE(ParseQuery("MATCH p (x)-[:a]->(y)").status().IsParseError());
  EXPECT_TRUE(ParseQuery("MATCH p = (x)-[:a]-(y)").status().IsParseError());
  EXPECT_TRUE(ParseQuery("MATCH p = (x)-[]->(y)").status().IsParseError());
  EXPECT_TRUE(
      ParseQuery("MATCH p = (x)-[:a]->(y) WHERE").status().IsParseError());
  EXPECT_TRUE(ParseQuery("MATCH ANY 0 WALK p = (x)-[:a]->(y)")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseQuery("MATCH 0 PARTITIONS ALL GROUPS ALL PATHS WALK "
                         "p = (x)-[:a]->(y)")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseQuery("MATCH ALL PARTITIONS ALL GROUPS ALL PATHS WALK "
                         "p = (x)-[:a]->(y) GROUP BY")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(
      ParseQuery("MATCH p = (x)-[:a]->(y) extra").status().IsParseError());
}

// ---------------------------------------------------------------------------
// Table 7 translations.
// ---------------------------------------------------------------------------
TEST(TranslateTest, Table7Shapes) {
  PlanPtr re = PlanNode::Recursive(
      PathSemantics::kWalk,
      PlanNode::Select(EdgeLabelEq(1, "Knows"), PlanNode::EdgesScan()));
  struct Case {
    Selector sel;
    const char* algebra;
  };
  const std::string phi =
      "ϕ[WALK](σ[label(edge(1)) = \"Knows\"](Edges(G)))";
  std::vector<Case> cases = {
      {{SelectorKind::kAll, 1}, "π(*,*,*)(γ[](%))"},
      {{SelectorKind::kAnyShortest, 1}, "π(*,*,1)(τ[A](γ[ST](%)))"},
      {{SelectorKind::kAllShortest, 1}, "π(*,1,*)(τ[G](γ[STL](%)))"},
      {{SelectorKind::kAny, 1}, "π(*,*,1)(γ[ST](%))"},
      {{SelectorKind::kAnyK, 4}, "π(*,*,4)(γ[ST](%))"},
      {{SelectorKind::kShortestK, 4}, "π(*,*,4)(τ[A](γ[ST](%)))"},
      {{SelectorKind::kShortestKGroup, 4}, "π(*,4,*)(τ[G](γ[STL](%)))"},
  };
  for (const Case& c : cases) {
    PlanPtr plan = TranslateSelector(c.sel, re);
    std::string want(c.algebra);
    want.replace(want.find('%'), 1, phi);
    EXPECT_EQ(plan->ToAlgebraString(), want) << c.sel.ToString();
  }
}

TEST(TranslateTest, All28CombinationsValidate) {
  // Every selector × restrictor combination yields a well-typed plan.
  std::vector<Selector> selectors = {
      {SelectorKind::kAll, 1},       {SelectorKind::kAnyShortest, 1},
      {SelectorKind::kAllShortest, 1}, {SelectorKind::kAny, 1},
      {SelectorKind::kAnyK, 2},      {SelectorKind::kShortestK, 2},
      {SelectorKind::kShortestKGroup, 2}};
  std::vector<PathSemantics> restrictors = {
      PathSemantics::kWalk, PathSemantics::kTrail, PathSemantics::kAcyclic,
      PathSemantics::kSimple};
  int count = 0;
  for (const Selector& sel : selectors) {
    for (PathSemantics r : restrictors) {
      PlanPtr re = PlanNode::Recursive(
          r, PlanNode::Select(EdgeLabelEq(1, "Knows"),
                              PlanNode::EdgesScan()));
      PlanPtr plan = TranslateSelector(sel, re);
      EXPECT_TRUE(plan->Validate().ok());
      ++count;
    }
  }
  EXPECT_EQ(count, 28);
}

// ---------------------------------------------------------------------------
// §7.2 plan text.
// ---------------------------------------------------------------------------
TEST(PlanTextTest, ExtendedFormMatchesPaperStyle) {
  ParsedQuery q = MustParseQuery(
      "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS "
      "TRAIL p = (?x)-[(:Knows)+]->(?y) "
      "GROUP BY TARGET ORDER BY PATH");
  EXPECT_EQ(q.ToPlanText(),
            "Projection (ALL PARTITIONS ALL GROUPS 1 PATHS)\n"
            "OrderBy (Path)\n"
            "Group (Target)\n"
            "Restrictor (TRAIL)\n"
            "-> Recursive Join (restrictor: TRAIL)\n"
            "   -> Select: (label(edge(1)) = \"Knows\" , EDGES(G))\n");
}

TEST(PlanTextTest, StandardFormShowsSelector) {
  ParsedQuery q =
      MustParseQuery("MATCH ANY SHORTEST TRAIL p = (x)-[:Knows+]->(y)");
  std::string text = q.ToPlanText();
  EXPECT_NE(text.find("Selector (ANY SHORTEST)"), std::string::npos);
  EXPECT_NE(text.find("Restrictor (TRAIL)"), std::string::npos);
  EXPECT_NE(text.find("Recursive Join (restrictor: TRAIL)"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end Query facade.
// ---------------------------------------------------------------------------
class QueryFacadeTest : public ::testing::Test {
 protected:
  void SetUp() override { g_ = MakeFigure1Graph(&ids_); }
  PropertyGraph g_;
  Figure1Ids ids_;
};

TEST_F(QueryFacadeTest, PaperIntroQueryUnderSimple) {
  auto r = ExecuteQuery(
      g_,
      "MATCH ALL SIMPLE p = (?x {name:\"Moe\"})"
      "-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:\"Apu\"})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  PathSet expected;
  expected.Insert(Path({ids_.n1, ids_.n2, ids_.n4}, {ids_.e1, ids_.e4}));
  expected.Insert(Path({ids_.n1, ids_.n6, ids_.n3, ids_.n7, ids_.n4},
                       {ids_.e8, ids_.e11, ids_.e7, ids_.e10}));
  EXPECT_EQ(*r, expected);
}

TEST_F(QueryFacadeTest, AnyShortestTrail) {
  auto r = ExecuteQuery(g_,
                        "MATCH ANY SHORTEST TRAIL p = (x)-[:Knows+]->(y)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 9u);  // one shortest trail per endpoint pair
}

TEST_F(QueryFacadeTest, AnyShortestWalkTerminatesViaOptimizer) {
  // Unoptimized this diverges (Knows cycle); the any-shortest rewrite
  // rescues it.
  QueryOptions opts;
  opts.eval.limits.max_path_length = 64;
  auto r = ExecuteQuery(
      g_, "MATCH ANY SHORTEST WALK p = (x)-[:Knows+]->(y)", opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 9u);

  opts.optimize = false;
  auto diverges = ExecuteQuery(
      g_, "MATCH ANY SHORTEST WALK p = (x)-[:Knows+]->(y)", opts);
  EXPECT_TRUE(diverges.status().IsResourceExhausted());
}

TEST_F(QueryFacadeTest, ExtendedQuerySampleTrailPerTarget) {
  // §7.1's example: one path per target over (:Knows)*.
  auto r = ExecuteQuery(g_,
                        "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS "
                        "TRAIL p = (?x)-[(:Knows)*]->(?y) "
                        "GROUP BY TARGET ORDER BY PATH");
  ASSERT_TRUE(r.ok());
  // Kleene star: every node is a target of its own zero-length path, which
  // is the shortest in each target-partition — 7 paths.
  EXPECT_EQ(r->size(), 7u);
  for (const Path& p : *r) EXPECT_EQ(p.Len(), 0u);
}

TEST_F(QueryFacadeTest, WhereConditionFilters) {
  auto r = ExecuteQuery(g_,
                        "MATCH ALL TRAIL p = (x)-[:Knows+]->(y) "
                        "WHERE len() = 2 AND last.name = \"Apu\"");
  ASSERT_TRUE(r.ok());
  PathSet expected;
  expected.Insert(Path({ids_.n1, ids_.n2, ids_.n4}, {ids_.e1, ids_.e4}));
  expected.Insert(Path({ids_.n3, ids_.n2, ids_.n4}, {ids_.e3, ids_.e4}));
  EXPECT_EQ(*r, expected);
}

TEST_F(QueryFacadeTest, WholePathRestrictorOption) {
  // :Knows+/:Knows+ under TRAIL, per-ϕ reading: both halves are trails but
  // their concatenation may repeat an edge. The whole-path option filters
  // those out.
  QueryOptions opts;
  auto lax = ExecuteQuery(
      g_, "MATCH ALL TRAIL p = (x)-[:Knows+/:Knows+]->(y)", opts);
  ASSERT_TRUE(lax.ok());
  opts.whole_path_restrictor = true;
  auto strict = ExecuteQuery(
      g_, "MATCH ALL TRAIL p = (x)-[:Knows+/:Knows+]->(y)", opts);
  ASSERT_TRUE(strict.ok());
  EXPECT_LT(strict->size(), lax->size());
  for (const Path& p : *strict) EXPECT_TRUE(p.IsTrail());
  bool lax_has_non_trail = false;
  for (const Path& p : *lax) lax_has_non_trail |= !p.IsTrail();
  EXPECT_TRUE(lax_has_non_trail);
}

TEST_F(QueryFacadeTest, EffectivePlanExposesOptimizedPlan) {
  auto q = Query::Parse("MATCH ANY SHORTEST WALK p = (x)-[:Knows+]->(y)");
  ASSERT_TRUE(q.ok());
  QueryOptions opts;
  PlanPtr optimized = q->EffectivePlan(opts);
  // The rewrite swapped the ϕ semantics.
  EXPECT_NE(optimized->ToAlgebraString().find("ϕ[SHORTEST]"),
            std::string::npos);
  opts.optimize = false;
  EXPECT_NE(q->EffectivePlan(opts)->ToAlgebraString().find("ϕ[WALK]"),
            std::string::npos);
}

TEST_F(QueryFacadeTest, SelectorSemanticsDocsExist) {
  // The Table 1/2 documentation strings are wired up (used by EXPLAIN-style
  // tooling and the README).
  EXPECT_NE(std::string(SelectorSemantics(SelectorKind::kShortestKGroup))
                .find("first k groups"),
            std::string::npos);
  EXPECT_NE(std::string(RestrictorSemantics(PathSemantics::kTrail))
                .find("repeated edges"),
            std::string::npos);
}

}  // namespace
}  // namespace pathalg
