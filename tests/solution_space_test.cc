// Tests for the Extended Path Algebra (§5): solution spaces, γψ (Table 4),
// τθ (Table 6), π (Algorithm 1), and the paper's worked example — Table 5
// and the Figure 5 pipeline (ANY SHORTEST TRAIL).

#include <gtest/gtest.h>

#include <set>

#include "algebra/core_ops.h"
#include "algebra/recursive.h"
#include "algebra/solution_space.h"
#include "path/path_ops.h"
#include "workload/figure1.h"

namespace pathalg {
namespace {

class SolutionSpaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = MakeFigure1Graph(&ids_);
    auto& i = ids_;
    p1_ = Path({i.n1, i.n2}, {i.e1});
    p2_ = Path({i.n1, i.n2, i.n3, i.n2}, {i.e1, i.e2, i.e3});
    p3_ = Path({i.n1, i.n2, i.n3}, {i.e1, i.e2});
    p5_ = Path({i.n1, i.n2, i.n4}, {i.e1, i.e4});
    p6_ = Path({i.n1, i.n2, i.n3, i.n2, i.n4}, {i.e1, i.e2, i.e3, i.e4});
    p7_ = Path({i.n2, i.n3, i.n2}, {i.e2, i.e3});
    p9_ = Path({i.n2, i.n3}, {i.e2});
    p11_ = Path({i.n2, i.n4}, {i.e4});
    p12_ = Path({i.n2, i.n3, i.n2, i.n4}, {i.e2, i.e3, i.e4});
    p13_ = Path({i.n3, i.n2, i.n4}, {i.e3, i.e4});
    // The paper's Table 5 input: the trails of Table 3 (column T).
    for (const Path& p :
         {p1_, p2_, p3_, p5_, p6_, p7_, p9_, p11_, p12_, p13_}) {
      trails_.Insert(p);
    }
  }

  PropertyGraph g_;
  Figure1Ids ids_;
  Path p1_, p2_, p3_, p5_, p6_, p7_, p9_, p11_, p12_, p13_;
  PathSet trails_;
};

// ---------------------------------------------------------------------------
// Table 4: the solution-space organization induced by each γψ.
// ---------------------------------------------------------------------------
TEST_F(SolutionSpaceTest, Table4NoneIsOnePartitionOneGroup) {
  SolutionSpace ss = GroupBy(trails_, GroupKey::kNone);
  EXPECT_EQ(ss.num_partitions(), 1u);
  EXPECT_EQ(ss.num_groups(), 1u);
  EXPECT_EQ(ss.num_paths(), 10u);
}

TEST_F(SolutionSpaceTest, Table4SourcePartitions) {
  // Sources among the 10 trails: n1, n2, n3 → 3 partitions, 1 group each.
  SolutionSpace ss = GroupBy(trails_, GroupKey::kS);
  EXPECT_EQ(ss.num_partitions(), 3u);
  EXPECT_EQ(ss.num_groups(), 3u);
  for (size_t p = 0; p < ss.num_partitions(); ++p) {
    EXPECT_EQ(ss.GroupsOfPartition(p).size(), 1u);
  }
  // Every path in a partition's group shares its First().
  for (size_t grp = 0; grp < ss.num_groups(); ++grp) {
    const auto& member_ixs = ss.PathsOfGroup(grp);
    ASSERT_FALSE(member_ixs.empty());
    NodeId source = ss.path(member_ixs[0]).First();
    for (uint32_t ix : member_ixs) {
      EXPECT_EQ(ss.path(ix).First(), source);
    }
  }
}

TEST_F(SolutionSpaceTest, Table4TargetPartitions) {
  // Targets: n2, n3, n4 → 3 partitions, 1 group per partition.
  SolutionSpace ss = GroupBy(trails_, GroupKey::kT);
  EXPECT_EQ(ss.num_partitions(), 3u);
  EXPECT_EQ(ss.num_groups(), 3u);
}

TEST_F(SolutionSpaceTest, Table4LengthGroups) {
  // Lengths 1..4 → 1 partition, 4 groups.
  SolutionSpace ss = GroupBy(trails_, GroupKey::kL);
  EXPECT_EQ(ss.num_partitions(), 1u);
  EXPECT_EQ(ss.num_groups(), 4u);
  EXPECT_EQ(ss.GroupsOfPartition(0).size(), 4u);
}

TEST_F(SolutionSpaceTest, Table4CompositeKeys) {
  EXPECT_EQ(GroupBy(trails_, GroupKey::kST).num_partitions(), 7u);
  EXPECT_EQ(GroupBy(trails_, GroupKey::kST).num_groups(), 7u);
  SolutionSpace sl = GroupBy(trails_, GroupKey::kSL);
  EXPECT_EQ(sl.num_partitions(), 3u);
  EXPECT_EQ(sl.num_groups(), 8u);  // n1:{1,2,3,4} n2:{1,2,3} n3:{2}
  SolutionSpace tl = GroupBy(trails_, GroupKey::kTL);
  EXPECT_EQ(tl.num_partitions(), 3u);
  EXPECT_EQ(tl.num_groups(), 9u);  // n2:{1,2,3} n3:{1,2} n4:{1,2,3,4}
  SolutionSpace stl = GroupBy(trails_, GroupKey::kSTL);
  EXPECT_EQ(stl.num_partitions(), 7u);
  EXPECT_EQ(stl.num_groups(), 10u);
}

TEST_F(SolutionSpaceTest, GroupByInitializesAllRanksToOne) {
  SolutionSpace ss = GroupBy(trails_, GroupKey::kSTL);
  for (size_t i = 0; i < ss.num_paths(); ++i) EXPECT_EQ(ss.PathRank(i), 1u);
  for (size_t grp = 0; grp < ss.num_groups(); ++grp) {
    EXPECT_EQ(ss.GroupRank(grp), 1u);
  }
  for (size_t p = 0; p < ss.num_partitions(); ++p) {
    EXPECT_EQ(ss.PartitionRank(p), 1u);
  }
}

TEST_F(SolutionSpaceTest, GroupByOfEmptySetIsEmptySpace) {
  SolutionSpace ss = GroupBy(PathSet(), GroupKey::kNone);
  EXPECT_EQ(ss.num_paths(), 0u);
  EXPECT_EQ(ss.num_groups(), 0u);
  EXPECT_EQ(ss.num_partitions(), 0u);
}

// ---------------------------------------------------------------------------
// Table 5: the worked solution space γST over the Table 3 trails.
// ---------------------------------------------------------------------------
TEST_F(SolutionSpaceTest, Table5SolutionSpace) {
  SolutionSpace ss = GroupBy(trails_, GroupKey::kST);
  ASSERT_EQ(ss.num_partitions(), 7u);

  // Expected partitions keyed by (source, target) → {paths, MinL(P)}.
  struct Row {
    NodeId s, t;
    std::set<size_t> lens;
    size_t min_l;
  };
  std::vector<Row> expect = {
      {ids_.n1, ids_.n2, {1, 3}, 1},  // part1: p1, p2
      {ids_.n1, ids_.n3, {2}, 2},     // part2: p3
      {ids_.n1, ids_.n4, {2, 4}, 2},  // part3: p5, p6
      {ids_.n2, ids_.n2, {2}, 2},     // part4: p7
      {ids_.n2, ids_.n3, {1}, 1},     // part5: p9
      {ids_.n2, ids_.n4, {1, 3}, 1},  // part6: p11, p12
      {ids_.n3, ids_.n4, {2}, 2},     // part7: p13
  };
  // Note: the paper's Table 5 lists MinL(part3) = 1; the paths it shows for
  // part3 (p5 len 2, p6 len 4) give MinL = 2 — we follow the definition.
  for (const Row& row : expect) {
    bool found = false;
    for (size_t p = 0; p < ss.num_partitions(); ++p) {
      const auto& groups = ss.GroupsOfPartition(p);
      ASSERT_EQ(groups.size(), 1u);
      const auto& paths = ss.PathsOfGroup(groups[0]);
      ASSERT_FALSE(paths.empty());
      const Path& first = ss.path(paths[0]);
      if (first.First() != row.s || first.Last() != row.t) continue;
      found = true;
      std::set<size_t> lens;
      for (uint32_t ix : paths) {
        EXPECT_EQ(ss.path(ix).First(), row.s);
        EXPECT_EQ(ss.path(ix).Last(), row.t);
        lens.insert(ss.path(ix).Len());
      }
      EXPECT_EQ(lens, row.lens);
      EXPECT_EQ(ss.MinLenOfPartition(p), row.min_l);
      EXPECT_EQ(ss.MinLenOfGroup(groups[0]), row.min_l);
    }
    EXPECT_TRUE(found) << "partition (" << row.s << "," << row.t << ")";
  }
}

// ---------------------------------------------------------------------------
// Table 6: τθ rank assignments.
// ---------------------------------------------------------------------------
TEST_F(SolutionSpaceTest, Table6OrderByPathOnly) {
  SolutionSpace ss = OrderBy(GroupBy(trails_, GroupKey::kST), OrderKey::kA);
  for (size_t i = 0; i < ss.num_paths(); ++i) {
    EXPECT_EQ(ss.PathRank(i), ss.path(i).Len());  // Δ′(p) = Len(p)
  }
  for (size_t grp = 0; grp < ss.num_groups(); ++grp) {
    EXPECT_EQ(ss.GroupRank(grp), 1u);  // Δ′(G) = Δ(G)
  }
  for (size_t p = 0; p < ss.num_partitions(); ++p) {
    EXPECT_EQ(ss.PartitionRank(p), 1u);  // Δ′(P) = Δ(P)
  }
}

TEST_F(SolutionSpaceTest, Table6OrderByGroupOnly) {
  SolutionSpace ss = OrderBy(GroupBy(trails_, GroupKey::kSTL), OrderKey::kG);
  for (size_t grp = 0; grp < ss.num_groups(); ++grp) {
    EXPECT_EQ(ss.GroupRank(grp), ss.MinLenOfGroup(grp));
  }
  for (size_t i = 0; i < ss.num_paths(); ++i) {
    EXPECT_EQ(ss.PathRank(i), 1u);
  }
}

TEST_F(SolutionSpaceTest, Table6OrderByPartitionOnly) {
  SolutionSpace ss = OrderBy(GroupBy(trails_, GroupKey::kST), OrderKey::kP);
  for (size_t p = 0; p < ss.num_partitions(); ++p) {
    EXPECT_EQ(ss.PartitionRank(p), ss.MinLenOfPartition(p));
  }
  for (size_t i = 0; i < ss.num_paths(); ++i) {
    EXPECT_EQ(ss.PathRank(i), 1u);
  }
}

TEST_F(SolutionSpaceTest, Table6CompositeOrderings) {
  SolutionSpace pga =
      OrderBy(GroupBy(trails_, GroupKey::kSTL), OrderKey::kPGA);
  for (size_t p = 0; p < pga.num_partitions(); ++p) {
    EXPECT_EQ(pga.PartitionRank(p), pga.MinLenOfPartition(p));
  }
  for (size_t grp = 0; grp < pga.num_groups(); ++grp) {
    EXPECT_EQ(pga.GroupRank(grp), pga.MinLenOfGroup(grp));
  }
  for (size_t i = 0; i < pga.num_paths(); ++i) {
    EXPECT_EQ(pga.PathRank(i), pga.path(i).Len());
  }
  SolutionSpace pa = OrderBy(GroupBy(trails_, GroupKey::kST), OrderKey::kPA);
  for (size_t grp = 0; grp < pa.num_groups(); ++grp) {
    EXPECT_EQ(pa.GroupRank(grp), 1u);  // G untouched by PA
  }
}

TEST_F(SolutionSpaceTest, OrderByDoesNotMutateInput) {
  SolutionSpace base = GroupBy(trails_, GroupKey::kST);
  SolutionSpace ordered = OrderBy(base, OrderKey::kA);
  (void)ordered;
  for (size_t i = 0; i < base.num_paths(); ++i) {
    EXPECT_EQ(base.PathRank(i), 1u);
  }
}

// ---------------------------------------------------------------------------
// Algorithm 1 (projection).
// ---------------------------------------------------------------------------
TEST_F(SolutionSpaceTest, ProjectAllIsIdentityOnPathSet) {
  SolutionSpace ss = GroupBy(trails_, GroupKey::kST);
  auto r = Project(ss, {std::nullopt, std::nullopt, std::nullopt});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, trails_);
}

TEST_F(SolutionSpaceTest, Figure5PipelineAnyShortestTrail) {
  // π(*,*,1)(τA(γST(ϕTrail(σ_{Knows}(Edges))))) over the Table 3 trails.
  SolutionSpace ss =
      OrderBy(GroupBy(trails_, GroupKey::kST), OrderKey::kA);
  auto r = Project(ss, {std::nullopt, std::nullopt, 1});
  ASSERT_TRUE(r.ok());
  PathSet expected;
  for (const Path& p : {p1_, p3_, p5_, p7_, p9_, p11_, p13_}) {
    expected.Insert(p);
  }
  EXPECT_EQ(*r, expected);  // §5 Step 6's exact answer
}

TEST_F(SolutionSpaceTest, ProjectWithoutOrderByPicksCanonicalSmallest) {
  // Without τ, Δ ≡ 1 and path-level ties resolve canonically (shortest,
  // then smallest ids) — the deterministic stand-in for the paper's
  // non-deterministic ANY.
  SolutionSpace ss = GroupBy(trails_, GroupKey::kST);
  auto r = Project(ss, {std::nullopt, std::nullopt, 1});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 7u);
  EXPECT_TRUE(r->Contains(p1_));  // first inserted path of part1
}

TEST_F(SolutionSpaceTest, ProjectLimitsPartitionsAndGroups) {
  // γL + τG orders length-groups 1,2,3,4; π(*,2,*) keeps lengths {1,2}.
  SolutionSpace ss = OrderBy(GroupBy(trails_, GroupKey::kL), OrderKey::kG);
  auto r = Project(ss, {std::nullopt, 2, std::nullopt});
  ASSERT_TRUE(r.ok());
  for (const Path& p : *r) EXPECT_LE(p.Len(), 2u);
  EXPECT_EQ(r->size(), 7u);  // length 1: p1,p9,p11; length 2: p3,p5,p7,p13
}

TEST_F(SolutionSpaceTest, ProjectKShortestPerPartition) {
  // SHORTEST 2 WALK-style: π(*,*,2)(τA(γST(...))).
  SolutionSpace ss = OrderBy(GroupBy(trails_, GroupKey::kST), OrderKey::kA);
  auto r = Project(ss, {std::nullopt, std::nullopt, 2});
  ASSERT_TRUE(r.ok());
  // Each of the 7 partitions has ≤ 2 paths here, so all 10 come back.
  EXPECT_EQ(*r, trails_);
}

TEST_F(SolutionSpaceTest, ProjectRejectsZeroCounts) {
  SolutionSpace ss = GroupBy(trails_, GroupKey::kST);
  EXPECT_TRUE(Project(ss, {0, std::nullopt, std::nullopt})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Project(ss, {std::nullopt, 0, std::nullopt})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Project(ss, {std::nullopt, std::nullopt, 0})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SolutionSpaceTest, ProjectClampsOversizedCounts) {
  SolutionSpace ss = GroupBy(trails_, GroupKey::kST);
  auto r = Project(ss, {100, 100, 100});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, trails_);
}

TEST_F(SolutionSpaceTest, PartitionOrderingBeforeProjection) {
  // τP then π(1,*,*): keeps only the partition with the globally shortest
  // path. Two partitions tie at MinL = 1 … the stable order keeps the
  // first-occurring one, (n1→n2) = {p1, p2}.
  SolutionSpace ss = OrderBy(GroupBy(trails_, GroupKey::kST), OrderKey::kP);
  auto r = Project(ss, {1, std::nullopt, std::nullopt});
  ASSERT_TRUE(r.ok());
  PathSet expected;
  expected.Insert(p1_);
  expected.Insert(p2_);
  EXPECT_EQ(*r, expected);
}

TEST_F(SolutionSpaceTest, EndToEndFromRecursiveOperator) {
  // Full-stack sanity: the complete ϕTrail answer (12 paths — Table 3 plus
  // the two paths it omits) flows through γ/τ/π. ALL SHORTEST per pair =
  // π(*,1,*)(τG(γSTL(...))) — compare against KeepShortestPerEndpointPair.
  PathSet knows = Select(g_, EdgesOf(g_), *EdgeLabelEq(1, "Knows"));
  auto trails = Recursive(knows, PathSemantics::kTrail);
  ASSERT_TRUE(trails.ok());
  ASSERT_EQ(trails->size(), 12u);
  SolutionSpace ss =
      OrderBy(GroupBy(*trails, GroupKey::kSTL), OrderKey::kG);
  auto r = Project(ss, {std::nullopt, 1, std::nullopt});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, KeepShortestPerEndpointPair(*trails));
}

TEST_F(SolutionSpaceTest, ToTableStringMentionsEveryPath) {
  SolutionSpace ss = GroupBy(trails_, GroupKey::kST);
  std::string table = ss.ToTableString(g_);
  EXPECT_NE(table.find("part7"), std::string::npos);
  EXPECT_NE(table.find("(n1, e1, n2)"), std::string::npos);
  EXPECT_NE(table.find("MinL(P)"), std::string::npos);
}

TEST_F(SolutionSpaceTest, KeyPredicateHelpers) {
  EXPECT_TRUE(GroupKeyUsesSource(GroupKey::kSL));
  EXPECT_FALSE(GroupKeyUsesSource(GroupKey::kTL));
  EXPECT_TRUE(GroupKeyUsesTarget(GroupKey::kSTL));
  EXPECT_TRUE(GroupKeyUsesLength(GroupKey::kL));
  EXPECT_FALSE(GroupKeyUsesLength(GroupKey::kST));
  EXPECT_TRUE(OrderKeyOrdersPartitions(OrderKey::kPA));
  EXPECT_FALSE(OrderKeyOrdersPartitions(OrderKey::kGA));
  EXPECT_TRUE(OrderKeyOrdersGroups(OrderKey::kGA));
  EXPECT_TRUE(OrderKeyOrdersPaths(OrderKey::kPGA));
  EXPECT_FALSE(OrderKeyOrdersPaths(OrderKey::kPG));
  EXPECT_STREQ(GroupKeyToString(GroupKey::kSTL), "STL");
  EXPECT_STREQ(OrderKeyToString(OrderKey::kPGA), "PGA");
}

}  // namespace
}  // namespace pathalg
