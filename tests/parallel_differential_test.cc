// The randomized differential harness for the parallel operator runtime:
// parallel evaluation must be *byte-identical* to serial — the same paths
// in the same insertion order (not just set-equal), and on budget
// exhaustion the same Status — at every thread count. Seeded random
// multigraphs × random top-closure regexes (the same trial family as the
// CSR harness, tests/fuzz_util.h), evaluated through the full plan
// evaluator at threads ∈ {1, 2, 4, 8} with min_chunk=1 so even tiny
// intermediate sets fan out over the pool.
//
// Trial budget: ≥200 graph×query trials per semantics (walk runs on
// random DAGs, where its answer sets are finite).
//
// Also here: EvalLimits behavior under parallel ϕ (same Status / same
// partial answer at any thread count — the budget merge runs on the
// calling thread in serial order by construction), EvalStats parallel
// counters, and the associativity contract of EvalStats::Merge.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "algebra/core_ops.h"
#include "fuzz_util.h"
#include "path/path_ops.h"
#include "plan/evaluator.h"
#include "regex/compile.h"
#include "regex/parser.h"
#include "workload/generators.h"

namespace pathalg {
namespace {

const std::vector<std::string> kRegexLabels = {"a", "b", "c", "d"};
const std::vector<std::string> kGraphLabels = {"a", "b", "c"};

constexpr size_t kTrialsPerSemantics = 220;
constexpr size_t kThreadCounts[] = {2, 4, 8};

PropertyGraph TrialGraph(std::mt19937_64& rng, bool acyclic) {
  UniformMultigraphOptions opts;
  opts.num_nodes = 4 + rng() % 5;   // 4..8
  opts.num_edges = 6 + rng() % 9;   // 6..14
  opts.labels = kGraphLabels;
  opts.unlabeled_percent = 15;
  opts.acyclic = acyclic;
  opts.seed = rng();
  return MakeUniformMultigraph(opts);
}

/// Evaluates the compiled plan at 1 thread and at every entry of
/// kThreadCounts, asserting byte-identical results (or identical errors).
::testing::AssertionResult RunParallelTrial(const PropertyGraph& g,
                                            const std::string& regex_text,
                                            PathSemantics semantics,
                                            const std::string& context) {
  auto fail = [&](const std::string& what) {
    return ::testing::AssertionFailure()
           << context << " regex `" << regex_text << "` semantics "
           << PathSemanticsToString(semantics) << ": " << what;
  };
  auto regex = ParseRegex(regex_text);
  if (!regex.ok()) return fail("regex parse: " + regex.status().ToString());
  CompileOptions copts;
  copts.semantics = semantics;
  PlanPtr plan = CompileRegex(*regex, copts);

  EvalOptions serial_opts;
  serial_opts.threads = 1;
  Result<PathSet> serial = Evaluate(g, plan, serial_opts);

  for (size_t threads : kThreadCounts) {
    EvalOptions par_opts;
    par_opts.threads = threads;
    par_opts.min_chunk = 1;
    EvalStats stats;
    par_opts.stats = &stats;
    Result<PathSet> parallel = Evaluate(g, plan, par_opts);
    if (serial.ok() != parallel.ok()) {
      return fail("threads=" + std::to_string(threads) + ": serial " +
                  serial.status().ToString() + " vs parallel " +
                  parallel.status().ToString());
    }
    if (!serial.ok()) {
      if (serial.status().ToString() != parallel.status().ToString()) {
        return fail("threads=" + std::to_string(threads) +
                    ": error mismatch: " + serial.status().ToString() +
                    " vs " + parallel.status().ToString());
      }
      continue;
    }
    if (serial->paths() != parallel->paths()) {
      return fail("threads=" + std::to_string(threads) + ": serial (" +
                  std::to_string(serial->size()) +
                  " paths) != parallel byte-for-byte (" +
                  std::to_string(parallel->size()) + " paths)\n  serial: " +
                  serial->ToString(g) + "\n  parallel: " +
                  parallel->ToString(g));
    }
  }
  return ::testing::AssertionSuccess();
}

void RunFuzzLoop(PathSemantics semantics, bool acyclic_graphs) {
  for (uint64_t trial = 1; trial <= kTrialsPerSemantics; ++trial) {
    // Everything about the trial derives from this one seed (offset from
    // the CSR harness's stream so the two suites explore different
    // graphs).
    const uint64_t seed =
        trial * 40503u * 65537u + static_cast<uint64_t>(semantics);
    std::mt19937_64 rng(seed);
    PropertyGraph g = TrialGraph(rng, acyclic_graphs);
    std::string regex = fuzz::RandomTopClosureRegex(rng, kRegexLabels);
    EXPECT_TRUE(RunParallelTrial(
        g, regex, semantics,
        "trial " + std::to_string(trial) + " seed " + std::to_string(seed)));
    if (::testing::Test::HasFailure()) break;  // one repro is enough
  }
}

TEST(ParallelDifferentialFuzz, Trail) {
  RunFuzzLoop(PathSemantics::kTrail, false);
}

TEST(ParallelDifferentialFuzz, Acyclic) {
  RunFuzzLoop(PathSemantics::kAcyclic, false);
}

TEST(ParallelDifferentialFuzz, Simple) {
  RunFuzzLoop(PathSemantics::kSimple, false);
}

TEST(ParallelDifferentialFuzz, Shortest) {
  RunFuzzLoop(PathSemantics::kShortest, false);
}

TEST(ParallelDifferentialFuzz, WalkOnRandomDags) {
  // Walks are only finite on DAGs; cyclic walk budget behavior is pinned
  // by the ParallelEvalLimits suite below.
  RunFuzzLoop(PathSemantics::kWalk, true);
}

// The regex-driven loops above never reach the generic parallel σ: every
// compiled label atom is answered by the evaluator's label-scan fast
// path. Exercise σ (and ⋈) at the operator level directly, over
// materialized closures whose cardinality dwarfs min_chunk=1.
TEST(ParallelDifferentialFuzz, DirectSelectAndJoinByteIdentity) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    std::mt19937_64 rng(seed * 7919u);
    PropertyGraph g = TrialGraph(rng, /*acyclic=*/false);
    EvalLimits limits;
    limits.max_path_length = 3;
    limits.truncate = true;
    auto closure = Recursive(EdgesOf(g), PathSemantics::kWalk, limits);
    ASSERT_TRUE(closure.ok()) << "seed " << seed;
    const std::vector<ConditionPtr> conditions = {
        LenCompare(CompareOp::kGe, 2),
        EdgeLabelEq(1, kRegexLabels[rng() % kRegexLabels.size()]),
        Condition::Or(LenEq(1), NodeLabelEq(1, "Node")),
        Condition::Not(EdgeLabelEq(2, "a")),
    };
    for (const ConditionPtr& c : conditions) {
      const PathSet serial = Select(g, *closure, *c);
      for (size_t t : kThreadCounts) {
        ParallelStats stats;
        const PathSet parallel =
            Select(g, *closure, *c, ParallelOptions{t, 1}, &stats);
        ASSERT_EQ(serial.paths(), parallel.paths())
            << "Select seed " << seed << " threads " << t << " condition "
            << c->ToString();
      }
    }
    const PathSet serial_join = Join(*closure, EdgesOf(g));
    for (size_t t : kThreadCounts) {
      const PathSet parallel_join =
          Join(*closure, EdgesOf(g), ParallelOptions{t, 1});
      ASSERT_EQ(serial_join.paths(), parallel_join.paths())
          << "Join seed " << seed << " threads " << t;
    }
  }
}

// ---------------------------------------------------------------------------
// EvalLimits under parallel ϕ: budget exhaustion must produce the same
// Status and (with truncate) the same partial answer at any thread count.
// ---------------------------------------------------------------------------

ParallelOptions Par(size_t threads) { return {threads, /*min_chunk=*/1}; }

class ParallelEvalLimitsTest : public ::testing::Test {
 protected:
  static std::vector<PathSemantics> AllSemantics() {
    return {PathSemantics::kWalk, PathSemantics::kTrail,
            PathSemantics::kAcyclic, PathSemantics::kSimple,
            PathSemantics::kShortest};
  }
};

TEST_F(ParallelEvalLimitsTest, MaxPathsExhaustionIsThreadCountInvariant) {
  PropertyGraph cycle = MakeCycleGraph(6);
  PathSet base = EdgesOf(cycle);
  for (bool truncate : {false, true}) {
    EvalLimits limits;
    limits.max_paths = 10;
    limits.truncate = truncate;
    auto serial =
        Recursive(base, PathSemantics::kWalk, limits, PhiEngine::kOptimized);
    for (size_t t : {2u, 4u, 8u}) {
      auto parallel = Recursive(base, PathSemantics::kWalk, limits,
                                PhiEngine::kOptimized, Par(t));
      ASSERT_EQ(serial.ok(), parallel.ok()) << "threads " << t;
      if (!serial.ok()) {
        EXPECT_TRUE(parallel.status().IsResourceExhausted());
        EXPECT_EQ(serial.status().ToString(), parallel.status().ToString())
            << "threads " << t;
      } else {
        EXPECT_EQ(serial->paths(), parallel->paths()) << "threads " << t;
        EXPECT_LE(parallel->size(), 10u);
      }
    }
  }
}

TEST_F(ParallelEvalLimitsTest, MaxPathLengthIsThreadCountInvariant) {
  PropertyGraph cycle = MakeCycleGraph(5);
  PathSet base = EdgesOf(cycle);
  for (PathSemantics sem : AllSemantics()) {
    for (bool truncate : {false, true}) {
      EvalLimits limits;
      limits.max_path_length = 3;
      limits.truncate = truncate;
      auto serial = Recursive(base, sem, limits, PhiEngine::kOptimized);
      for (size_t t : {2u, 4u, 8u}) {
        auto parallel =
            Recursive(base, sem, limits, PhiEngine::kOptimized, Par(t));
        ASSERT_EQ(serial.ok(), parallel.ok())
            << PathSemanticsToString(sem) << " threads " << t;
        if (!serial.ok()) {
          EXPECT_EQ(serial.status().ToString(), parallel.status().ToString());
        } else {
          EXPECT_EQ(serial->paths(), parallel->paths())
              << PathSemanticsToString(sem) << " threads " << t;
          for (const Path& p : *parallel) EXPECT_LE(p.Len(), 3u);
        }
      }
    }
  }
}

TEST_F(ParallelEvalLimitsTest, MaxIterationsIsThreadCountInvariant) {
  // A long chain forces many frontier rounds; a tiny round budget
  // truncates mid-closure identically everywhere.
  PropertyGraph chain = MakeChainGraph(24);
  PathSet base = EdgesOf(chain);
  for (bool truncate : {false, true}) {
    EvalLimits limits;
    limits.max_iterations = 3;
    limits.truncate = truncate;
    for (PathSemantics sem :
         {PathSemantics::kWalk, PathSemantics::kTrail,
          PathSemantics::kAcyclic}) {
      auto serial = Recursive(base, sem, limits, PhiEngine::kOptimized);
      for (size_t t : {2u, 4u, 8u}) {
        auto parallel =
            Recursive(base, sem, limits, PhiEngine::kOptimized, Par(t));
        ASSERT_EQ(serial.ok(), parallel.ok())
            << PathSemanticsToString(sem) << " threads " << t;
        if (!serial.ok()) {
          EXPECT_EQ(serial.status().ToString(), parallel.status().ToString());
        } else {
          EXPECT_EQ(serial->paths(), parallel->paths())
              << PathSemanticsToString(sem) << " threads " << t;
        }
      }
    }
  }
}

TEST_F(ParallelEvalLimitsTest, WholeEvaluatorPropagatesExhaustion) {
  // Through Evaluate(): ϕWalk over a cycle with a tight budget errors the
  // same way at every thread count (stats still filled on error).
  PropertyGraph cycle = MakeCycleGraph(4);
  auto regex = ParseRegex(":Knows+");
  ASSERT_TRUE(regex.ok());
  CompileOptions copts;
  copts.semantics = PathSemantics::kWalk;
  PlanPtr plan = CompileRegex(*regex, copts);
  for (size_t t : {1u, 2u, 4u, 8u}) {
    EvalOptions opts;
    opts.threads = t;
    opts.min_chunk = 1;
    opts.limits.max_paths = 16;
    EvalStats stats;
    opts.stats = &stats;
    auto r = Evaluate(cycle, plan, opts);
    EXPECT_TRUE(r.status().IsResourceExhausted()) << "threads " << t;
    EXPECT_GT(stats.nodes_evaluated, 0u) << "stats filled on error";
  }
}

// ---------------------------------------------------------------------------
// EvalStats parallel counters and the Merge associativity contract.
// ---------------------------------------------------------------------------

TEST(ParallelEvalStatsTest, ParallelRunsReportChunksAndFallbacks) {
  PropertyGraph g = MakeRandomGraph(24, 160, {"a", "b"}, 11);
  auto regex = ParseRegex("(:a|:b)/(:a|:b)");
  ASSERT_TRUE(regex.ok());
  PlanPtr plan = CompileRegex(*regex, {});

  EvalOptions serial_opts;
  serial_opts.threads = 1;
  EvalStats serial_stats;
  serial_opts.stats = &serial_stats;
  ASSERT_TRUE(Evaluate(g, plan, serial_opts).ok());
  EXPECT_EQ(serial_stats.chunks_executed, 0u);
  EXPECT_EQ(serial_stats.steal_count, 0u);

  EvalOptions par_opts;
  par_opts.threads = 4;
  par_opts.min_chunk = 1;
  EvalStats par_stats;
  par_opts.stats = &par_stats;
  ASSERT_TRUE(Evaluate(g, plan, par_opts).ok());
  EXPECT_GT(par_stats.chunks_executed, 0u);

  // With a sky-high min_chunk every eligible site falls back serially,
  // attributed to its operator kind.
  EvalOptions fallback_opts;
  fallback_opts.threads = 4;
  fallback_opts.min_chunk = 1'000'000;
  EvalStats fb_stats;
  fallback_opts.stats = &fb_stats;
  ASSERT_TRUE(Evaluate(g, plan, fallback_opts).ok());
  EXPECT_EQ(fb_stats.chunks_executed, 0u);
  size_t total_fallbacks = 0;
  for (size_t k = 0; k < kNumPlanKinds; ++k) {
    total_fallbacks += fb_stats.op_serial_fallback[k];
  }
  EXPECT_GT(total_fallbacks, 0u);
}

TEST(ParallelEvalStatsTest, NaiveEngineCountsAsRecursiveFallback) {
  PropertyGraph g = MakeChainGraph(6);
  ParallelStats pstats;
  auto r = Recursive(EdgesOf(g), PathSemantics::kTrail, {},
                     PhiEngine::kNaive, Par(4), &pstats);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(pstats.serial_fallbacks, 1u);
  EXPECT_EQ(pstats.chunks_executed, 0u);
}

EvalStats MakeStats(uint64_t seed) {
  std::mt19937_64 rng(seed);
  EvalStats s;
  s.wall_us = rng() % 1000;
  s.nodes_evaluated = rng() % 100;
  s.peak_intermediate_paths = rng() % 10000;
  for (size_t i = 0; i < kNumPlanKinds; ++i) {
    s.op_us[i] = rng() % 500;
    s.op_count[i] = rng() % 50;
    s.op_serial_fallback[i] = rng() % 5;
  }
  s.label_scan_hits = rng() % 20;
  s.chunks_executed = rng() % 300;
  s.steal_count = rng() % 40;
  s.fused_closure_hits = rng() % 8;
  s.frontier_states_expanded = rng() % 5000;
  s.frontier_paths_reconstructed = rng() % 800;
  return s;
}

bool StatsEqual(const EvalStats& a, const EvalStats& b) {
  if (a.wall_us != b.wall_us || a.nodes_evaluated != b.nodes_evaluated ||
      a.peak_intermediate_paths != b.peak_intermediate_paths ||
      a.label_scan_hits != b.label_scan_hits ||
      a.chunks_executed != b.chunks_executed ||
      a.steal_count != b.steal_count ||
      a.fused_closure_hits != b.fused_closure_hits ||
      a.frontier_states_expanded != b.frontier_states_expanded ||
      a.frontier_paths_reconstructed != b.frontier_paths_reconstructed) {
    return false;
  }
  for (size_t i = 0; i < kNumPlanKinds; ++i) {
    if (a.op_us[i] != b.op_us[i] || a.op_count[i] != b.op_count[i] ||
        a.op_serial_fallback[i] != b.op_serial_fallback[i]) {
      return false;
    }
  }
  return true;
}

TEST(EvalStatsMergeTest, MergeIsAssociative) {
  // Per-worker partial stats must combine to the same totals under any
  // grouping: counters sum, peak_intermediate_paths is a max — both
  // associative. (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const EvalStats a = MakeStats(seed * 3);
    const EvalStats b = MakeStats(seed * 3 + 1);
    const EvalStats c = MakeStats(seed * 3 + 2);

    EvalStats left = a;       // (a ⊕ b) ⊕ c
    left.Merge(b);
    left.Merge(c);

    EvalStats bc = b;         // a ⊕ (b ⊕ c)
    bc.Merge(c);
    EvalStats right = a;
    right.Merge(bc);

    EXPECT_TRUE(StatsEqual(left, right)) << "seed " << seed;
  }
}

TEST(EvalStatsMergeTest, MergeIsCommutativeAndPeakIsHighWater) {
  const EvalStats a = MakeStats(101);
  const EvalStats b = MakeStats(202);
  EvalStats ab = a;
  ab.Merge(b);
  EvalStats ba = b;
  ba.Merge(a);
  EXPECT_TRUE(StatsEqual(ab, ba));
  // The high-water mark is a max, not a sum: merging a small-peak run
  // into a large-peak aggregate must not inflate the aggregate.
  EXPECT_EQ(ab.peak_intermediate_paths,
            std::max(a.peak_intermediate_paths, b.peak_intermediate_paths));
  EXPECT_EQ(ab.nodes_evaluated, a.nodes_evaluated + b.nodes_evaluated);
}

TEST(EvalStatsMergeTest, MergeWithDefaultIsIdentity) {
  const EvalStats a = MakeStats(77);
  EvalStats merged = a;
  merged.Merge(EvalStats());
  EXPECT_TRUE(StatsEqual(merged, a));
}

}  // namespace
}  // namespace pathalg
