// The storage subsystem's unit suite: round-trip fidelity (every value
// type, unlabelled objects, parallel edges, the empty graph), writer
// determinism (byte-identical re-serialization), header probing, mmap
// laziness, and — the robustness half — corruption handling. A snapshot
// reader must turn *any* malformed input into a clean Status: truncation,
// bad magic, wrong version, flipped checksums, out-of-bounds section
// tables, and a seeded single-byte-flip fuzz sweep all land here, and the
// whole suite runs under ASan/UBSan in CI (ctest -R Snapshot) so "clean
// failure" means no UB either.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>

#include "graph/csv.h"
#include "graph/property_graph.h"
#include "graph/value.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"
#include "workload/generators.h"

namespace pathalg {
namespace {

using storage::SnapshotReader;
using storage::SnapshotWriter;

std::string TempPath(const std::string& stem) {
  return ::testing::TempDir() + "pathalg_snapshot_test_" + stem;
}

/// Every value type, an unlabelled node, an unlabelled edge, parallel
/// edges, and a node with no properties — the writer's full surface.
PropertyGraph RichGraph() {
  GraphBuilder b;
  NodeId ana = b.AddNamedNode("ana", "Person",
                              {{"age", Value(int64_t{30})},
                               {"score", Value(2.5)},
                               {"active", Value(true)},
                               {"bio", Value("likes hiking")}});
  NodeId bob = b.AddNamedNode("bob", "Person",
                              {{"age", Value(int64_t{41})},
                               {"active", Value(false)},
                               {"nothing", Value()}});
  NodeId hub = b.AddNamedNode("hub", "", {{"note", Value("unlabelled")}});
  NodeId post = b.AddNamedNode("post1", "Message", {});
  EXPECT_TRUE(
      b.AddNamedEdge("k1", ana, bob, "Knows", {{"since", Value(int64_t{2019})}})
          .ok());
  EXPECT_TRUE(b.AddNamedEdge("k2", bob, ana, "Knows",
                             {{"weight", Value(0.75)}, {"bio", Value("dup")}})
                  .ok());
  EXPECT_TRUE(b.AddNamedEdge("k3", ana, bob, "Knows", {}).ok());
  EXPECT_TRUE(b.AddNamedEdge("l1", ana, post, "Likes", {}).ok());
  EXPECT_TRUE(b.AddNamedEdge("u1", hub, post, "", {{"kind", Value("untyped")}})
                  .ok());
  return b.Build();
}

/// Deep equality through the CSV dump (names, labels, topology and every
/// property of every object, in a canonical order).
void ExpectSameGraph(const PropertyGraph& a, const PropertyGraph& b) {
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(DumpGraphToCsv(a), DumpGraphToCsv(b));
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(SnapshotRoundTripTest, BufferRoundTripPreservesEverything) {
  PropertyGraph g = RichGraph();
  std::string image = SnapshotWriter::Serialize(g);
  Result<PropertyGraph> back =
      SnapshotReader::FromBuffer(image.data(), image.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameGraph(g, *back);
  // Structure survives too, not just the dump: label partition + CSR.
  EXPECT_EQ(back->EdgesWithLabel(back->FindLabel("Knows")).size(), 3u);
  EXPECT_EQ(back->OutEdges(back->FindNodeByName("ana")).size(), 3u);
}

TEST(SnapshotRoundTripTest, FileRoundTripBothModes) {
  PropertyGraph g = RichGraph();
  const std::string path = TempPath("roundtrip.snap");
  ASSERT_TRUE(SnapshotWriter::Write(g, path).ok());

  storage::OpenOptions copy_opts;
  copy_opts.mode = storage::OpenMode::kCopy;
  Result<PropertyGraph> copied = SnapshotReader::Open(path, copy_opts);
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();
  EXPECT_EQ(copied->storage_mode(), PropertyGraph::StorageMode::kOwned);
  ExpectSameGraph(g, *copied);

  Result<PropertyGraph> mapped = SnapshotReader::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectSameGraph(g, *mapped);

  std::remove(path.c_str());
}

TEST(SnapshotRoundTripTest, EmptyGraphRoundTrips) {
  PropertyGraph g = GraphBuilder().Build();
  std::string image = SnapshotWriter::Serialize(g);
  Result<PropertyGraph> back =
      SnapshotReader::FromBuffer(image.data(), image.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_nodes(), 0u);
  EXPECT_EQ(back->num_edges(), 0u);
  EXPECT_EQ(SnapshotWriter::Serialize(*back), image);
}

TEST(SnapshotRoundTripTest, GeneratedGraphRoundTrips) {
  SocialGraphOptions opts;
  opts.num_persons = 80;
  PropertyGraph g = MakeSocialGraph(opts);
  std::string image = SnapshotWriter::Serialize(g);
  Result<PropertyGraph> back =
      SnapshotReader::FromBuffer(image.data(), image.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameGraph(g, *back);
}

TEST(SnapshotRoundTripTest, WriterIsDeterministic) {
  PropertyGraph g = RichGraph();
  const std::string image = SnapshotWriter::Serialize(g);
  // Same logical graph, fresh build: byte-identical image.
  EXPECT_EQ(SnapshotWriter::Serialize(RichGraph()), image);
  // Re-serializing a reopened graph reproduces the image, both modes.
  Result<PropertyGraph> back =
      SnapshotReader::FromBuffer(image.data(), image.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(SnapshotWriter::Serialize(*back), image);

  const std::string path = TempPath("determinism.snap");
  ASSERT_TRUE(SnapshotWriter::Write(g, path).ok());
  Result<PropertyGraph> mapped = SnapshotReader::Open(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(SnapshotWriter::Serialize(*mapped), image);
  std::remove(path.c_str());
}

TEST(SnapshotRoundTripTest, CopyOfMappedGraphOwnsItsArrays) {
  const std::string path = TempPath("copyof.snap");
  ASSERT_TRUE(SnapshotWriter::Write(RichGraph(), path).ok());
  Result<PropertyGraph> mapped = SnapshotReader::Open(path);
  ASSERT_TRUE(mapped.ok());
  PropertyGraph owned = *mapped;  // copy materializes + detaches
  EXPECT_EQ(owned.storage_mode(), PropertyGraph::StorageMode::kOwned);
  mapped = Result<PropertyGraph>(GraphBuilder().Build());  // drop the mapping
  std::remove(path.c_str());
  ExpectSameGraph(RichGraph(), owned);  // no dangling views
}

TEST(SnapshotProbeTest, ReportsHeaderMetadata) {
  PropertyGraph g = RichGraph();
  const std::string path = TempPath("probe.snap");
  ASSERT_TRUE(SnapshotWriter::Write(g, path).ok());
  Result<SnapshotReader::Info> info = SnapshotReader::Probe(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, storage::kSnapshotVersion);
  EXPECT_EQ(info->section_count, storage::kSectionCount);
  EXPECT_EQ(info->num_nodes, g.num_nodes());
  EXPECT_EQ(info->num_edges, g.num_edges());
  EXPECT_EQ(info->file_size, SnapshotWriter::Serialize(g).size());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Mapped-mode laziness
// ---------------------------------------------------------------------------

TEST(SnapshotLazinessTest, TopologyQueriesDoNotMaterializeColumns) {
  const std::string path = TempPath("lazy.snap");
  ASSERT_TRUE(SnapshotWriter::Write(RichGraph(), path).ok());
  Result<PropertyGraph> g = SnapshotReader::Open(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->storage_mode(), PropertyGraph::StorageMode::kMapped);
  EXPECT_FALSE(g->node_props_materialized());
  EXPECT_FALSE(g->edge_props_materialized());
  EXPECT_FALSE(g->names_materialized());

  // Topology + label scans touch only the mapped flat arrays.
  size_t knows = g->EdgesWithLabel(g->FindLabel("Knows")).size();
  EXPECT_EQ(knows, 3u);
  for (NodeId n = 0; n < g->num_nodes(); ++n) (void)g->OutEdges(n);
  EXPECT_FALSE(g->node_props_materialized());
  EXPECT_FALSE(g->edge_props_materialized());

  // The CSR arrays really are zero-copy: they point into the mapping.
  auto span = g->backing_span();
  ASSERT_NE(span.first, nullptr);
  const char* base = static_cast<const char*>(span.first);
  const EdgeId* edges = g->OutEdges(0).begin();
  EXPECT_GE(reinterpret_cast<const char*>(edges), base);
  EXPECT_LT(reinterpret_cast<const char*>(edges), base + span.second);

  // First property access flips exactly the touched side.
  (void)g->NodeProperties(0);
  EXPECT_TRUE(g->node_props_materialized());
  EXPECT_FALSE(g->edge_props_materialized());
  (void)g->EdgeName(0);
  EXPECT_TRUE(g->names_materialized());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Corruption robustness — every malformed input is a clean Status.
// ---------------------------------------------------------------------------

Status OpenImage(const std::string& image) {
  return SnapshotReader::FromBuffer(image.data(), image.size()).status();
}

TEST(SnapshotCorruptionTest, TruncationAtEveryBoundaryFailsCleanly) {
  std::string image = SnapshotWriter::Serialize(RichGraph());
  // Header prefixes, table prefixes, mid-section cuts and the final byte.
  const size_t cuts[] = {0,  1,  7,  8,   63,  64,  65,
                         96, 200, image.size() / 2, image.size() - 1};
  for (size_t cut : cuts) {
    ASSERT_LT(cut, image.size());
    Status st = OpenImage(image.substr(0, cut));
    EXPECT_FALSE(st.ok()) << "cut=" << cut;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << "cut=" << cut;
  }
}

TEST(SnapshotCorruptionTest, BadMagicFailsCleanly) {
  std::string image = SnapshotWriter::Serialize(RichGraph());
  image[0] = 'X';
  Status st = OpenImage(image);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("magic"), std::string::npos)
      << st.ToString();
}

TEST(SnapshotCorruptionTest, WrongVersionFailsCleanly) {
  std::string image = SnapshotWriter::Serialize(RichGraph());
  uint32_t bogus = storage::kSnapshotVersion + 7;
  std::memcpy(&image[offsetof(storage::SnapshotHeader, version)], &bogus,
              sizeof(bogus));
  Status st = OpenImage(image);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("version"), std::string::npos)
      << st.ToString();
}

TEST(SnapshotCorruptionTest, WrongEndiannessFailsCleanly) {
  std::string image = SnapshotWriter::Serialize(RichGraph());
  uint32_t swapped = 0x04030201;
  std::memcpy(&image[offsetof(storage::SnapshotHeader, endian)], &swapped,
              sizeof(swapped));
  EXPECT_FALSE(OpenImage(image).ok());
}

TEST(SnapshotCorruptionTest, FlippedPayloadByteTripsSectionChecksum) {
  std::string image = SnapshotWriter::Serialize(RichGraph());
  // Flip one byte in the first section's payload (the first byte after
  // the header + table, aligned region).
  const size_t table_end = sizeof(storage::SnapshotHeader) +
                           storage::kSectionCount * sizeof(storage::SectionEntry);
  const size_t first_payload = storage::AlignUp(table_end);
  ASSERT_LT(first_payload, image.size());
  image[first_payload] ^= 0x40;
  Status st = OpenImage(image);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("checksum"), std::string::npos)
      << st.ToString();
}

TEST(SnapshotCorruptionTest, FlippedTableByteTripsTableChecksum) {
  std::string image = SnapshotWriter::Serialize(RichGraph());
  image[sizeof(storage::SnapshotHeader) + 4] ^= 0x01;
  EXPECT_FALSE(OpenImage(image).ok());
}

TEST(SnapshotCorruptionTest, SectionTableOutOfBoundsFailsCleanly) {
  const std::string pristine = SnapshotWriter::Serialize(RichGraph());
  const size_t entry0 = sizeof(storage::SnapshotHeader);

  auto patch_entry = [&](size_t field_offset, uint64_t value) {
    std::string image = pristine;
    std::memcpy(&image[entry0 + field_offset], &value, sizeof(value));
    // Re-seal the table checksum so the OOB values themselves — not the
    // checksum mismatch — are what the validator must reject.
    const uint64_t table_sum = storage::Fnv1a64(
        image.data() + entry0,
        storage::kSectionCount * sizeof(storage::SectionEntry));
    std::memcpy(&image[offsetof(storage::SnapshotHeader, table_checksum)],
                &table_sum, sizeof(table_sum));
    return image;
  };

  // Offset past EOF; offset+size wrapping; unaligned offset; size past EOF.
  EXPECT_FALSE(
      OpenImage(patch_entry(offsetof(storage::SectionEntry, offset),
                            pristine.size() + 64))
          .ok());
  EXPECT_FALSE(OpenImage(patch_entry(offsetof(storage::SectionEntry, offset),
                                     ~uint64_t{0} - 32))
                   .ok());
  EXPECT_FALSE(
      OpenImage(patch_entry(offsetof(storage::SectionEntry, offset), 65)).ok());
  EXPECT_FALSE(OpenImage(patch_entry(offsetof(storage::SectionEntry, size),
                                     pristine.size() * 2))
                   .ok());
}

TEST(SnapshotCorruptionTest, MissingFileIsNotFound) {
  Result<PropertyGraph> g =
      SnapshotReader::Open(TempPath("does_not_exist.snap"));
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kNotFound);
  Result<SnapshotReader::Info> info =
      SnapshotReader::Probe(TempPath("does_not_exist.snap"));
  EXPECT_FALSE(info.ok());
}

TEST(SnapshotCorruptionTest, GarbageFileFailsCleanly) {
  const std::string path = TempPath("garbage.snap");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const std::string junk(333, 'z');
  std::fwrite(junk.data(), 1, junk.size(), f);
  std::fclose(f);
  Result<PropertyGraph> g = SnapshotReader::Open(path);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

/// Seeded fuzz: flip 1–4 random bytes anywhere in the image. With
/// checksums on, any flip inside a checksummed region must be rejected;
/// flips in alignment padding may legitimately pass — in that case the
/// decoded graph must still be fully readable (no crash, no UB; ASan/
/// UBSan enforce the "no UB" half in CI). A second sweep with checksums
/// off exercises the structural validator alone the same way.
TEST(SnapshotCorruptionTest, SeededByteFlipFuzz) {
  SocialGraphOptions opts;
  opts.num_persons = 30;
  const std::string pristine =
      SnapshotWriter::Serialize(MakeSocialGraph(opts));
  for (bool verify : {true, false}) {
    for (uint64_t trial = 0; trial < 300; ++trial) {
      std::mt19937_64 rng(trial * 2654435761u + (verify ? 1 : 0));
      std::string image = pristine;
      const size_t flips = 1 + rng() % 4;
      for (size_t i = 0; i < flips; ++i) {
        size_t pos = rng() % image.size();
        image[pos] ^= static_cast<char>(1u << (rng() % 8));
      }
      Result<PropertyGraph> g =
          SnapshotReader::FromBuffer(image.data(), image.size(), verify);
      if (!g.ok()) continue;  // clean rejection — the common case
      // Survived validation: every accessor must still be safe.
      (void)DumpGraphToCsv(*g);
      for (NodeId n = 0; n < g->num_nodes(); ++n) (void)g->OutEdges(n);
    }
  }
}

/// Truncation fuzz: cut the file at 300 seeded offsets; never a crash.
TEST(SnapshotCorruptionTest, SeededTruncationFuzz) {
  const std::string pristine = SnapshotWriter::Serialize(RichGraph());
  for (uint64_t trial = 0; trial < 300; ++trial) {
    std::mt19937_64 rng(trial * 40503u);
    const size_t cut = rng() % pristine.size();
    Status st = OpenImage(pristine.substr(0, cut));
    EXPECT_FALSE(st.ok()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace pathalg
