// Tests for regular path expressions: AST, parser, printing, and the
// regex→algebra compiler (Figures 2–4 shapes), evaluated on Figure 1.

#include <gtest/gtest.h>

#include "plan/evaluator.h"
#include "regex/ast.h"
#include "regex/compile.h"
#include "regex/parser.h"
#include "workload/figure1.h"

namespace pathalg {
namespace {

RegexPtr MustParse(std::string_view text) {
  auto r = ParseRegex(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

TEST(RegexAstTest, FactoriesAndAccessors) {
  RegexPtr r = RegexNode::Plus(RegexNode::Label("Knows"));
  EXPECT_EQ(r->kind(), RegexKind::kPlus);
  EXPECT_EQ(r->left()->kind(), RegexKind::kLabel);
  EXPECT_EQ(r->left()->label(), "Knows");
}

TEST(RegexAstTest, MatchesEmpty) {
  EXPECT_FALSE(MustParse(":Knows")->MatchesEmpty());
  EXPECT_FALSE(MustParse(":Knows+")->MatchesEmpty());
  EXPECT_TRUE(MustParse(":Knows*")->MatchesEmpty());
  EXPECT_TRUE(MustParse(":Knows?")->MatchesEmpty());
  EXPECT_FALSE(MustParse(":a/:b*")->MatchesEmpty());
  EXPECT_TRUE(MustParse(":a*/:b*")->MatchesEmpty());
  EXPECT_TRUE(MustParse(":a|:b*")->MatchesEmpty());
  EXPECT_FALSE(MustParse(":a|:b")->MatchesEmpty());
  EXPECT_TRUE(MustParse("(:a/:b)*")->MatchesEmpty());
}

TEST(RegexParserTest, PrecedenceUnionBelowConcatBelowPostfix) {
  // a|b/c+ parses as a | (b / (c+)).
  RegexPtr r = MustParse(":a|:b/:c+");
  ASSERT_EQ(r->kind(), RegexKind::kUnion);
  EXPECT_EQ(r->left()->label(), "a");
  ASSERT_EQ(r->right()->kind(), RegexKind::kConcat);
  EXPECT_EQ(r->right()->left()->label(), "b");
  EXPECT_EQ(r->right()->right()->kind(), RegexKind::kPlus);
}

TEST(RegexParserTest, ParensOverridePrecedence) {
  RegexPtr r = MustParse("(:a|:b)/:c");
  ASSERT_EQ(r->kind(), RegexKind::kConcat);
  EXPECT_EQ(r->left()->kind(), RegexKind::kUnion);
}

TEST(RegexParserTest, PaperExamples) {
  // The Figure 2 pattern.
  RegexPtr r = MustParse("(:Knows+)|(:Likes/:Has_creator)+");
  ASSERT_EQ(r->kind(), RegexKind::kUnion);
  EXPECT_EQ(r->left()->kind(), RegexKind::kPlus);
  ASSERT_EQ(r->right()->kind(), RegexKind::kPlus);
  EXPECT_EQ(r->right()->left()->kind(), RegexKind::kConcat);
  // The §3 example.
  RegexPtr r2 = MustParse("Knows|(Knows/Knows)");
  ASSERT_EQ(r2->kind(), RegexKind::kUnion);
}

TEST(RegexParserTest, ColonIsOptionalAndWhitespaceIgnored) {
  EXPECT_TRUE(MustParse("Knows")->Equals(*MustParse(":Knows")));
  EXPECT_TRUE(MustParse(" :a / :b ")->Equals(*MustParse(":a/:b")));
}

TEST(RegexParserTest, DoublePostfix) {
  // (a+)* is legal: a plus under a star.
  RegexPtr r = MustParse(":a+*");
  ASSERT_EQ(r->kind(), RegexKind::kStar);
  EXPECT_EQ(r->left()->kind(), RegexKind::kPlus);
}

TEST(RegexParserTest, Errors) {
  EXPECT_TRUE(ParseRegex("").status().IsParseError());
  EXPECT_TRUE(ParseRegex("(:a").status().IsParseError());
  EXPECT_TRUE(ParseRegex(":a)").status().IsParseError());
  EXPECT_TRUE(ParseRegex("+").status().IsParseError());
  EXPECT_TRUE(ParseRegex(":a||:b").status().IsParseError());
  EXPECT_TRUE(ParseRegex(":a/:").status().IsParseError());
  EXPECT_TRUE(ParseRegex("123").status().IsParseError());
}

TEST(RegexParserTest, ToStringRoundTrips) {
  for (std::string text :
       {":Knows+", "(:Likes/:Has_creator)+", ":a|:b/:c+", "(:a|:b)*",
        ":a?", "(:a/:b)*|:c"}) {
    RegexPtr once = MustParse(text);
    RegexPtr twice = MustParse(once->ToString());
    EXPECT_TRUE(once->Equals(*twice)) << text << " -> " << once->ToString();
  }
}

TEST(RegexAstTest, EqualsDiscriminates) {
  EXPECT_FALSE(MustParse(":a/:b")->Equals(*MustParse(":b/:a")));
  EXPECT_FALSE(MustParse(":a+")->Equals(*MustParse(":a*")));
  EXPECT_FALSE(MustParse(":a")->Equals(*MustParse(":b")));
}

// ---------------------------------------------------------------------------
// Compile shapes.
// ---------------------------------------------------------------------------
TEST(RegexCompileTest, LabelCompilesToSelectOverEdges) {
  PlanPtr p = CompileRegex(MustParse(":Knows"));
  ASSERT_EQ(p->kind(), PlanKind::kSelect);
  EXPECT_EQ(p->child()->kind(), PlanKind::kEdgesScan);
  EXPECT_TRUE(p->condition()->Equals(*EdgeLabelEq(1, "Knows")));
}

TEST(RegexCompileTest, StarCompilesToPhiUnionNodes) {
  // Figure 4: (Likes/Has_creator)* = ϕ(σL(E) ⋈ σH(E)) ∪ Nodes(G).
  CompileOptions opts;
  opts.semantics = PathSemantics::kWalk;
  PlanPtr p = CompileRegex(MustParse("(:Likes/:Has_creator)*"), opts);
  ASSERT_EQ(p->kind(), PlanKind::kUnion);
  ASSERT_EQ(p->child(0)->kind(), PlanKind::kRecursive);
  EXPECT_EQ(p->child(0)->semantics(), PathSemantics::kWalk);
  EXPECT_EQ(p->child(0)->child()->kind(), PlanKind::kJoin);
  EXPECT_EQ(p->child(1)->kind(), PlanKind::kNodesScan);
}

TEST(RegexCompileTest, SemanticsAppliedToEveryPhi) {
  CompileOptions opts;
  opts.semantics = PathSemantics::kSimple;
  PlanPtr p = CompileRegex(MustParse(":a+|:b+"), opts);
  ASSERT_EQ(p->kind(), PlanKind::kUnion);
  EXPECT_EQ(p->child(0)->semantics(), PathSemantics::kSimple);
  EXPECT_EQ(p->child(1)->semantics(), PathSemantics::kSimple);
}

TEST(RegexCompileTest, OptionalCompilesToUnionWithNodes) {
  PlanPtr p = CompileRegex(MustParse(":a?"));
  ASSERT_EQ(p->kind(), PlanKind::kUnion);
  EXPECT_EQ(p->child(0)->kind(), PlanKind::kSelect);
  EXPECT_EQ(p->child(1)->kind(), PlanKind::kNodesScan);
}

// ---------------------------------------------------------------------------
// Compile + evaluate on Figure 1.
// ---------------------------------------------------------------------------
class RegexEvalTest : public ::testing::Test {
 protected:
  void SetUp() override { g_ = MakeFigure1Graph(&ids_); }
  PropertyGraph g_;
  Figure1Ids ids_;
};

TEST_F(RegexEvalTest, Figure2QueryViaRegexCompiler) {
  // MATCH p = (?x {name:"Moe"})-[(:Knows+)|(:Likes/:Has_creator)+]->
  //           (?y {name:"Apu"}) under SIMPLE → {path1, path2}.
  CompileOptions opts;
  opts.semantics = PathSemantics::kSimple;
  PlanPtr plan = CompileRpq(
      MustParse("(:Knows+)|(:Likes/:Has_creator)+"), opts,
      Condition::And(FirstPropEq("name", Value("Moe")),
                     LastPropEq("name", Value("Apu"))));
  auto r = Evaluate(g_, plan);
  ASSERT_TRUE(r.ok());
  PathSet expected;
  expected.Insert(Path({ids_.n1, ids_.n2, ids_.n4}, {ids_.e1, ids_.e4}));
  expected.Insert(Path({ids_.n1, ids_.n6, ids_.n3, ids_.n7, ids_.n4},
                       {ids_.e8, ids_.e11, ids_.e7, ids_.e10}));
  EXPECT_EQ(*r, expected);
}

TEST_F(RegexEvalTest, FriendsOfFriendsViaRegexCompiler) {
  // §3's MATCH p = (?x {name:"Moe"})-[Knows|(Knows/Knows)]->(y).
  PlanPtr plan = CompileRpq(MustParse("Knows|(Knows/Knows)"), {},
                            FirstPropEq("name", Value("Moe")));
  auto r = Evaluate(g_, plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  EXPECT_TRUE(r->Contains(Path({ids_.n1, ids_.n2}, {ids_.e1})));
  EXPECT_TRUE(
      r->Contains(Path({ids_.n1, ids_.n2, ids_.n3}, {ids_.e1, ids_.e2})));
  EXPECT_TRUE(
      r->Contains(Path({ids_.n1, ids_.n2, ids_.n4}, {ids_.e1, ids_.e4})));
}

TEST_F(RegexEvalTest, StarIncludesZeroLengthPaths) {
  PlanPtr plan = CompileRegex(MustParse(":Knows*"),
                              {.semantics = PathSemantics::kAcyclic});
  auto r = Evaluate(g_, plan);
  ASSERT_TRUE(r.ok());
  // 7 single-node paths + the 7 acyclic Knows+ paths.
  EXPECT_EQ(r->size(), 14u);
}

TEST_F(RegexEvalTest, UnknownLabelYieldsEmpty) {
  PlanPtr plan = CompileRegex(MustParse(":NoSuchLabel+"),
                              {.semantics = PathSemantics::kTrail});
  auto r = Evaluate(g_, plan);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

}  // namespace
}  // namespace pathalg
