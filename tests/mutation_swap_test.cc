// Readers-during-swap suite for the live-mutation subsystem, written to
// run under TSan: concurrent server sessions keep querying one mutable
// catalog entry while a writer session streams mutations through it and
// background compaction rebuilds + republishes base snapshots underneath.
// The MVCC contract under test:
//
//  - a session's in-flight query runs on the version it pinned, so every
//    response is byte-identical to the response some *published* version
//    gives — never a half-applied delta or a half-swapped snapshot;
//  - a version pinned before a compaction-driven swap is bit-stable
//    across it;
//  - sessions opened after the swap see the new version (and the same
//    content-addressed id the offline replay of the mutation history
//    predicts).

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "mutation/delta_log.h"
#include "mutation/live_graph.h"
#include "mutation/overlay.h"
#include "server/graph_catalog.h"
#include "server/session.h"
#include "storage/snapshot_writer.h"
#include "workload/generators.h"

namespace pathalg {
namespace {

/// Removes every regular file in `dir` and then the directory itself, so
/// a rerun of the binary never recovers the previous run's journals.
void RemoveDirShallow(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    std::remove((dir + "/" + name).c_str());
  }
  closedir(d);
  rmdir(dir.c_str());
}

std::string FreshMutationDir(const std::string& stem) {
  std::string dir = ::testing::TempDir() + "pathalg_mutation_swap_" + stem;
  RemoveDirShallow(dir);
  return dir;
}

std::string VersionHex(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

// The served graph and the mutation history every test replays: a Knows
// 6-cycle, three fresh nodes, then Knows edges closing them into a second
// cycle — each step changes the TRAIL Knows+ answer set.
constexpr const char* kSpec = "cycle n=6";
constexpr const char* kQuery = "MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)";

const std::vector<std::string> kMutations = {
    "add-node w1", "add-node w2",       "add-node w3",
    "add-edge w1 w2 label=Knows",       "add-edge w2 w3 label=Knows",
    "add-edge w3 w1 label=Knows",
};

/// Opens one session on `spec`, turns timing off (responses become
/// deterministic), then returns the per-line responses for `lines`.
std::vector<std::string> RunLines(server::SessionManager& manager,
                                  const std::string& spec,
                                  const std::vector<std::string>& lines) {
  auto session = manager.Open(spec);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  std::vector<std::string> responses;
  if (!session.ok()) return responses;
  std::string sink;
  (*session)->HandleLine("!timing off", &sink);
  for (const std::string& line : lines) {
    std::string out;
    (*session)->HandleLine(line, &out);
    responses.push_back(std::move(out));
  }
  return responses;
}

/// Every version the mutation history can publish (prefix states 0..N),
/// materialized offline through the same overlay merge the server uses.
std::vector<std::shared_ptr<const PropertyGraph>> PrefixVersions(
    const std::shared_ptr<const PropertyGraph>& base) {
  std::vector<std::shared_ptr<const PropertyGraph>> versions;
  versions.push_back(base);
  mutation::DeltaState state(base);
  for (const std::string& cmd : kMutations) {
    auto rec = mutation::ParseMutationCommand(cmd);
    EXPECT_TRUE(rec.ok()) << cmd;
    mutation::DeltaRecord resolved = *rec;
    EXPECT_TRUE(state.Apply(&resolved).ok()) << cmd;
    versions.push_back(std::make_shared<const PropertyGraph>(
        mutation::DeltaOverlayGraph::Apply(state)));
  }
  return versions;
}

/// The response each published version gives for kQuery, computed through
/// an ordinary read-only serving path (snapshot spec → session), so the
/// race assertion below compares full response bytes, not a summary.
std::vector<std::string> ExpectedResponses(
    const std::vector<std::shared_ptr<const PropertyGraph>>& versions,
    const std::string& stem) {
  server::GraphCatalog read_catalog;
  server::SessionManager read_manager(&read_catalog, {});
  std::vector<std::string> expected;
  for (size_t i = 0; i < versions.size(); ++i) {
    const std::string path = ::testing::TempDir() + "pathalg_mutation_swap_" +
                             stem + "_v" + std::to_string(i) + ".snap";
    EXPECT_TRUE(storage::SnapshotWriter::Write(*versions[i], path).ok());
    std::vector<std::string> r =
        RunLines(read_manager, "snapshot " + path, {kQuery});
    EXPECT_EQ(r.size(), 1u);
    if (r.size() == 1) expected.push_back(r[0]);
    std::remove(path.c_str());
  }
  return expected;
}

TEST(MutationSwapStress, ReadersSeeOnlyPublishedVersionBytes) {
  const std::string dir = FreshMutationDir("readers");
  server::GraphCatalogOptions copts;
  copts.mutation_dir = dir;
  copts.mutation_compact_threshold = 2;  // several swaps over 6 mutations
  copts.mutation_background_compaction = true;
  server::GraphCatalog catalog(copts);
  server::SessionManager manager(&catalog, {});

  auto entry = catalog.Get(kSpec);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  ASSERT_NE((*entry)->live, nullptr);
  const std::shared_ptr<const PropertyGraph> base = (*entry)->live->Current();

  const auto versions = PrefixVersions(base);
  const std::vector<std::string> expected_list =
      ExpectedResponses(versions, "readers");
  ASSERT_EQ(expected_list.size(), kMutations.size() + 1);
  const std::set<std::string> expected(expected_list.begin(),
                                       expected_list.end());
  // The mutations must actually change the answer, or the byte-identity
  // assertion below would be vacuous.
  ASSERT_GT(expected.size(), 1u);

  // 4 reader sessions hammer the query while one writer session streams
  // the mutation history (yielding between steps to widen the window).
  std::mutex mu;
  std::vector<std::string> bad;
  auto reader = [&]() {
    auto session = manager.Open(kSpec);
    if (!session.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      bad.push_back("open failed: " + session.status().ToString());
      return;
    }
    std::string sink;
    (*session)->HandleLine("!timing off", &sink);
    for (int i = 0; i < 30; ++i) {
      std::string out;
      (*session)->HandleLine(kQuery, &out);
      if (expected.count(out) == 0) {
        std::lock_guard<std::mutex> lock(mu);
        bad.push_back(out);
      }
    }
  };
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) readers.emplace_back(reader);

  std::thread writer([&]() {
    auto session = manager.Open(kSpec);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    for (const std::string& cmd : kMutations) {
      std::string out;
      (*session)->HandleLine("!mutate " + cmd, &out);
      EXPECT_EQ(out.rfind("OK mutate ", 0), 0u) << out;
      std::this_thread::yield();
    }
  });
  writer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_TRUE(bad.empty())
      << bad.size() << " response(s) matched no published version; first:\n"
      << bad.front();

  // Quiesce: wait out any detached compaction, then fold the remainder
  // synchronously. Compaction must preserve the version id.
  while ((*entry)->live->compaction_in_flight()) usleep(1000);
  ASSERT_TRUE((*entry)->live->Compact().ok());
  EXPECT_EQ((*entry)->live->VersionId(),
            storage::SnapshotWriter::VersionId(*versions.back()));
  EXPECT_GE((*entry)->live->counters().compactions, 1u);
  EXPECT_EQ((*entry)->live->counters().pending, 0u);
}

TEST(MutationSwapStress, PinnedVersionBytesStableAcrossCompaction) {
  const std::string dir = FreshMutationDir("pinned");
  server::GraphCatalogOptions copts;
  copts.mutation_dir = dir;
  server::GraphCatalog catalog(copts);

  auto entry = catalog.Get(kSpec);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  auto live = (*entry)->live;
  ASSERT_NE(live, nullptr);

  // Pin the pre-swap version and record its bytes.
  const std::shared_ptr<const PropertyGraph> pinned = live->Current();
  const std::string pinned_bytes = storage::SnapshotWriter::Serialize(*pinned);
  const uint64_t pinned_id = live->VersionId();

  for (const std::string& cmd : kMutations) {
    auto rec = mutation::ParseMutationCommand(cmd);
    ASSERT_TRUE(rec.ok());
    ASSERT_TRUE(live->Mutate(*rec).ok()) << cmd;
  }
  ASSERT_TRUE(live->Compact().ok());

  // The swap published a new version...
  EXPECT_NE(live->VersionId(), pinned_id);
  // ...while the pinned one is still byte-for-byte what it was.
  EXPECT_EQ(storage::SnapshotWriter::Serialize(*pinned), pinned_bytes);
}

TEST(MutationSwapStress, LateSessionsSeeTheNewVersion) {
  const std::string dir = FreshMutationDir("late");
  server::GraphCatalogOptions copts;
  copts.mutation_dir = dir;
  server::GraphCatalog catalog(copts);
  server::SessionManager manager(&catalog, {});

  auto entry = catalog.Get(kSpec);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  const std::shared_ptr<const PropertyGraph> base = (*entry)->live->Current();
  const auto versions = PrefixVersions(base);
  const std::vector<std::string> expected =
      ExpectedResponses(versions, "late");
  ASSERT_EQ(expected.size(), kMutations.size() + 1);

  std::vector<std::string> mutate_lines;
  for (const std::string& cmd : kMutations) {
    mutate_lines.push_back("!mutate " + cmd);
  }
  RunLines(manager, kSpec, mutate_lines);

  // A session opened after the whole history sees the final version: the
  // offline-predicted response bytes and the offline-predicted id.
  const std::vector<std::string> post =
      RunLines(manager, kSpec, {kQuery, "!version"});
  ASSERT_EQ(post.size(), 2u);
  EXPECT_EQ(post[0], expected.back());
  EXPECT_EQ(post[1],
            "OK version " +
                VersionHex(storage::SnapshotWriter::VersionId(
                    *versions.back())) +
                "\n");
}

}  // namespace
}  // namespace pathalg
