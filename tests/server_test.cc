// Tests for the concurrent serving subsystem (src/server): the
// GraphCatalog's load-once sharing, the SessionManager's admission gate
// and shared plan cache, the ServerSession protocol extensions (!limits,
// !threads, !timing, !record, catalog-backed !graph, extended !stats),
// live workload recording round-tripped through the .gqlw loader and the
// replay driver, the TCP front-end (two concurrent clients replaying
// different workloads byte-identical to serial single-client runs; BUSY
// on admission refusal), and a concurrent-session fuzz pinning the
// per-session determinism contract under real thread interleaving. The
// whole suite runs under TSan in CI — it is the data-race net for the
// catalog/cache/pool sharing surfaces.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/replay.h"
#include "engine/workload_file.h"
#include "server/graph_catalog.h"
#include "server/line_client.h"
#include "server/session.h"
#include "server/tcp_server.h"

namespace pathalg {
namespace {

using server::CatalogEntryPtr;
using server::GraphCatalog;
using server::LineClient;
using server::ServerSession;
using server::SessionManager;
using server::SessionManagerOptions;
using server::TcpServer;

/// Temp-file path unique to this test binary run.
std::string TempPath(const std::string& stem) {
  return ::testing::TempDir() + "pathalg_server_test_" + stem;
}

/// Feeds `lines` to a fresh session of `manager` and returns the
/// concatenated response stream.
std::string RunSessionScript(SessionManager& manager,
                             const std::vector<std::string>& lines) {
  auto session = manager.Open();
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  if (!session.ok()) return {};
  std::string out;
  for (const std::string& line : lines) {
    if (!(*session)->HandleLine(line, &out)) break;
  }
  return out;
}

// ---------------------------------------------------------------------------
// GraphCatalog
// ---------------------------------------------------------------------------

TEST(GraphCatalogTest, LoadsEachSpecExactlyOnceAndShares) {
  GraphCatalog catalog;
  auto a = catalog.Get("figure1");
  auto b = catalog.Get("figure1");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a).get(), (*b).get());            // same entry
  EXPECT_EQ((*a)->graph.get(), (*b)->graph.get());  // same graph instance
  EXPECT_EQ(catalog.size(), 1u);
  const server::CatalogCounters c = catalog.counters();
  EXPECT_EQ(c.loads, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ((*a)->stats.nodes, 7u);
  EXPECT_EQ((*a)->stats.edges, 11u);
}

TEST(GraphCatalogTest, CanonicalizesSpecWhitespace) {
  GraphCatalog catalog;
  auto a = catalog.Get("chain n=5  label=Knows");
  auto b = catalog.Get("  chain   n=5 label=Knows ");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a).get(), (*b).get());
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(GraphCatalogTest, EmptySpecIsFigure1) {
  GraphCatalog catalog;
  auto a = catalog.Get("");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->graph->num_nodes(), 7u);
  // The empty default and the explicit name share one entry — a server
  // started with no --graph must not build a second figure1 when a
  // client issues `!graph figure1`.
  auto b = catalog.Get("figure1");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a).get(), (*b).get());
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(GraphCatalogTest, DistinctSpecsLoadDistinctGraphs) {
  GraphCatalog catalog;
  auto a = catalog.Get("chain n=4");
  auto b = catalog.Get("cycle n=4");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE((*a)->graph.get(), (*b)->graph.get());
  EXPECT_EQ(catalog.size(), 2u);
}

TEST(GraphCatalogTest, BadSpecsErrorAndAreNotCached) {
  GraphCatalog catalog;
  EXPECT_FALSE(catalog.Get("no_such_kind n=4").ok());
  EXPECT_FALSE(catalog.Get("csv /no/such/file.csv").ok());
  EXPECT_EQ(catalog.size(), 0u);
  EXPECT_EQ(catalog.counters().errors, 2u);
}

TEST(GraphCatalogTest, LoadsCsvGraphs) {
  const std::string path = TempPath("catalog.csv");
  {
    std::ofstream file(path);
    file << "N,a,Person\nN,b,Person\nE,e1,a,b,Knows\n";
  }
  GraphCatalog catalog;
  auto g = catalog.Get("csv " + path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ((*g)->graph->num_nodes(), 2u);
  EXPECT_EQ((*g)->graph->num_edges(), 1u);
  std::remove(path.c_str());
}

TEST(GraphCatalogTest, CsvSpecPreservesPathWhitespace) {
  // Canonicalization collapses whitespace in generator specs, but a csv
  // payload is a file path: interior runs must survive byte-for-byte or
  // the catalog would open a different file than the `# graph` directive
  // the same spec round-trips through.
  const std::string path = TempPath("catalog  double  space.csv");
  {
    std::ofstream file(path);
    file << "N,a,Person\nN,b,Person\nE,e1,a,b,Knows\n";
  }
  GraphCatalog catalog;
  auto g = catalog.Get("csv " + path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ((*g)->spec, "csv " + path);
  EXPECT_EQ((*g)->graph->num_edges(), 1u);
  std::remove(path.c_str());
}

TEST(GraphCatalogTest, ConcurrentGetsShareOneLoad) {
  GraphCatalog catalog;
  constexpr size_t kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<CatalogEntryPtr> entries(kThreads);
  for (size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto e = catalog.Get("skewed persons=60 seed=3");
      if (e.ok()) entries[i] = *e;
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t i = 0; i < kThreads; ++i) {
    ASSERT_NE(entries[i], nullptr);
    EXPECT_EQ(entries[i].get(), entries[0].get());
  }
  EXPECT_EQ(catalog.counters().loads, 1u);
  EXPECT_EQ(catalog.counters().hits, kThreads - 1);
}

// ---------------------------------------------------------------------------
// SessionManager: admission gate + shared cache
// ---------------------------------------------------------------------------

TEST(SessionManagerTest, AdmissionGateRefusesOverMaxSessions) {
  GraphCatalog catalog;
  SessionManagerOptions options;
  options.max_sessions = 1;
  SessionManager manager(&catalog, options);

  auto first = manager.Open();
  ASSERT_TRUE(first.ok());
  auto second = manager.Open();
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(manager.counters().rejected, 1u);

  first->reset();  // releases the slot
  auto third = manager.Open();
  EXPECT_TRUE(third.ok());
  const server::SessionCounters c = manager.counters();
  EXPECT_EQ(c.opened, 2u);
  EXPECT_EQ(c.active, 1u);
  EXPECT_EQ(c.peak_active, 1u);
}

TEST(SessionManagerTest, BusyLineNamesTheLimit) {
  GraphCatalog catalog;
  SessionManagerOptions options;
  options.max_sessions = 3;
  SessionManager manager(&catalog, options);
  EXPECT_EQ(manager.BusyLine(), "BUSY max_sessions=3 reached, retry later\n");
}

TEST(SessionManagerTest, SessionsShareThePlanCache) {
  GraphCatalog catalog;
  SessionManager manager(&catalog, {});
  auto a = manager.Open();
  auto b = manager.Open();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  engine::ExecStats stats;
  ASSERT_TRUE((*a)->engine()
                  .Execute("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)", &stats)
                  .ok());
  EXPECT_FALSE(stats.cache_hit);
  // Session B's first execution of the same text hits A's prepared plan.
  ASSERT_TRUE((*b)->engine()
                  .Execute("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)", &stats)
                  .ok());
  EXPECT_TRUE(stats.cache_hit);
  EXPECT_EQ(&(*a)->engine().cache(), &(*b)->engine().cache());
  EXPECT_EQ(manager.shared_cache().stats().misses, 1u);
  EXPECT_EQ(manager.shared_cache().stats().hits, 1u);
}

TEST(SessionManagerTest, GraphSwapDoesNotClearTheSharedCache) {
  GraphCatalog catalog;
  SessionManager manager(&catalog, {});
  auto session = manager.Open();
  ASSERT_TRUE(session.ok());
  std::string out;
  (*session)->HandleLine("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)", &out);
  EXPECT_EQ(manager.shared_cache().size(), 1u);
  (*session)->HandleLine("!graph chain n=4 label=Knows", &out);
  EXPECT_EQ(manager.shared_cache().size(), 1u);  // kept: plans are
                                                 // graph-independent
}

// ---------------------------------------------------------------------------
// ServerSession protocol
// ---------------------------------------------------------------------------

struct SessionHarness {
  GraphCatalog catalog;
  std::unique_ptr<SessionManager> manager;
  std::unique_ptr<ServerSession> session;

  explicit SessionHarness(SessionManagerOptions options = {}) {
    manager = std::make_unique<SessionManager>(&catalog, options);
    auto opened = manager->Open();
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    session = std::move(opened).value();
  }

  std::string Handle(const std::string& line) {
    std::string out;
    session->HandleLine(line, &out);
    return out;
  }
};

TEST(ServerSessionTest, ThreadsCommandSetsEvalThreads) {
  SessionHarness h;
  EXPECT_EQ(h.Handle("!threads 4"), "OK threads 4\n");
  EXPECT_EQ(h.session->engine().eval_threads(), 4u);
  EXPECT_EQ(h.Handle("!threads nope"),
            "ERR !threads takes one non-negative integer "
            "(0 = hardware concurrency)\n");
}

TEST(ServerSessionTest, LimitsCommandSetsAndReportsEvalLimits) {
  SessionHarness h;
  EXPECT_EQ(h.Handle("!limits max_paths=10 max_len=3 truncate=1"),
            "OK limits max_paths=10 max_len=3 max_iterations=100000 "
            "truncate=1\n");
  EXPECT_EQ(h.session->engine().eval_limits().max_paths, 10u);
  EXPECT_EQ(h.session->engine().eval_limits().max_path_length, 3u);
  EXPECT_TRUE(h.session->engine().eval_limits().truncate);
  // Bare !limits prints without changing anything.
  EXPECT_EQ(h.Handle("!limits"),
            "OK limits max_paths=10 max_len=3 max_iterations=100000 "
            "truncate=1\n");
  EXPECT_EQ(h.Handle("!limits bogus=1"),
            "ERR !limits unknown key 'bogus' (known: max_paths, max_len, "
            "max_iterations, truncate)\n");
}

TEST(ServerSessionTest, LimitsActuallyGateEvaluation) {
  SessionHarness h;
  h.Handle("!timing off");
  const std::string unbounded =
      h.Handle("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)");
  EXPECT_EQ(unbounded, "OK 12 paths\n");
  // A truncating budget must cap the same query's answer at exactly
  // max_paths distinct paths (algebra/eval_budget.h) — here the first two
  // base Knows edges, well under the 12-path full closure.
  h.Handle("!limits max_paths=2 truncate=1");
  EXPECT_EQ(h.Handle("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)"),
            "OK 2 paths\n");
  // A non-truncating budget turns it into a clean protocol error.
  h.Handle("!limits truncate=0");
  const std::string err = h.Handle("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)");
  EXPECT_EQ(err.rfind("ERR ", 0), 0u) << err;
}

TEST(ServerSessionTest, TimingToggleMakesResponsesDeterministic) {
  SessionHarness h;
  EXPECT_EQ(h.Handle("!timing off"), "OK timing off\n");
  EXPECT_EQ(h.Handle("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)"),
            "OK 12 paths\n");
  EXPECT_EQ(h.Handle("!timing on"), "OK timing on\n");
  const std::string timed =
      h.Handle("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)");
  EXPECT_NE(timed.find(" paths hit parse="), std::string::npos) << timed;
  EXPECT_EQ(h.Handle("!timing sideways"), "ERR !timing takes 'on' or 'off'\n");
}

TEST(ServerSessionTest, StatsIncludeCatalogSessionAndPoolLines) {
  SessionHarness h;
  const std::string stats = h.Handle("!stats");
  EXPECT_NE(stats.find("STAT catalog_graphs="), std::string::npos);
  EXPECT_NE(stats.find("STAT sessions_active=1"), std::string::npos);
  EXPECT_NE(stats.find("STAT pool_workers="), std::string::npos);
  EXPECT_NE(stats.find("OK stats\n"), std::string::npos);
}

TEST(ServerSessionTest, StatsIncludeRobustnessCounters) {
  SessionHarness h;
  const std::string stats = h.Handle("!stats");
  // A fresh manager: every robustness counter present and zero.
  EXPECT_NE(stats.find("STAT deadline_trips=0 cancelled_queries=0 "
                       "slow_client_drops=0 quarantined_snapshots=0"),
            std::string::npos)
      << stats;
  // The per-site fault-injection counters, one line, every site named.
  EXPECT_NE(stats.find("STAT faults snapshot-read="), std::string::npos);
  EXPECT_NE(stats.find(" snapshot-mmap="), std::string::npos);
  EXPECT_NE(stats.find(" catalog-load="), std::string::npos);
  EXPECT_NE(stats.find(" socket-write="), std::string::npos);
  EXPECT_NE(stats.find(" record-flush="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Deadlines & cooperative cancellation
// ---------------------------------------------------------------------------

TEST(ServerSessionTest, DeadlineCommandSetsAndClearsTheBudget) {
  SessionHarness h;
  EXPECT_EQ(h.Handle("!deadline 250"), "OK deadline 250\n");
  EXPECT_EQ(h.Handle("!deadline off"), "OK deadline off\n");
  EXPECT_EQ(h.Handle("!deadline 0"),
            "ERR !deadline takes a positive millisecond count or 'off'\n");
  EXPECT_EQ(h.Handle("!deadline soon"),
            "ERR !deadline takes a positive millisecond count or 'off'\n");
  EXPECT_NE(h.Handle("!help").find("!deadline <ms>|off"), std::string::npos);
}

/// The acceptance case: a query that would run far beyond the deadline is
/// cancelled cooperatively (the pinned contract ERR of
/// algebra/eval_budget.h), promptly enough that the same session answers
/// a follow-up query immediately — at one and at four eval threads, so
/// both the serial path and the chunked parallel merge paths honor the
/// token.
TEST(ServerSessionTest, DeadlineCancelsCooperativelyAndSessionStaysUsable) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SessionHarness h;
    h.Handle("!timing off");
    h.Handle("!threads " + std::to_string(threads));
    // A dense generator graph whose full TRAIL closure is astronomically
    // beyond a few milliseconds; the huge non-truncating max_paths keeps
    // the deterministic budget from firing first.
    EXPECT_EQ(h.Handle("!graph social persons=300 seed=1")
                  .rfind("OK graph ", 0),
              0u);
    h.Handle("!limits max_paths=100000000 truncate=0");
    h.Handle("!deadline 5");
    const std::string err =
        h.Handle("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)");
    EXPECT_EQ(err.rfind("ERR ", 0), 0u) << err;
    EXPECT_NE(err.find("query cancelled (deadline)"), std::string::npos)
        << "threads=" << threads << ": " << err;
    EXPECT_NE(err.find("partial results were discarded"), std::string::npos);
    // The worker is immediately reusable: the very next request on the
    // same session (same engine, same pool) answers normally.
    h.Handle("!deadline off");
    const std::string ok =
        h.Handle("MATCH ANY SHORTEST p = (?x)-[:Knows]->(?y)");
    EXPECT_EQ(ok.rfind("OK ", 0), 0u) << ok;
    EXPECT_GE(h.manager->counters().deadline_trips, 1u)
        << "threads=" << threads;
    EXPECT_EQ(h.manager->counters().cancelled_queries, 0u);
    // The trip reached !stats too.
    const std::string stats = h.Handle("!stats");
    EXPECT_NE(stats.find("STAT deadline_trips=1"), std::string::npos)
        << stats;
  }
}

TEST(ServerSessionTest, DefaultDeadlineAppliesToFreshSessions) {
  SessionManagerOptions options;
  options.default_deadline_ms = 5;
  SessionHarness h(options);
  h.Handle("!timing off");
  h.Handle("!graph social persons=300 seed=1");
  h.Handle("!limits max_paths=100000000 truncate=0");
  const std::string err =
      h.Handle("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)");
  EXPECT_NE(err.find("query cancelled (deadline)"), std::string::npos)
      << err;
  // `!deadline off` overrides the server default for this session.
  h.Handle("!deadline off");
  const std::string ok =
      h.Handle("MATCH ANY SHORTEST p = (?x)-[:Knows]->(?y)");
  EXPECT_EQ(ok.rfind("OK ", 0), 0u) << ok;
}

TEST(ServerSessionTest, BareGraphCommandIsAnError) {
  // `!graph` with no spec must not silently swap to the figure1 default.
  SessionHarness h;
  h.Handle("!graph chain n=6 label=Knows");
  EXPECT_EQ(h.Handle("!graph").rfind("ERR !graph needs a spec", 0), 0u);
  EXPECT_EQ(h.session->graph_spec(), "chain n=6 label=Knows");
}

TEST(ServerSessionTest, BaseProtocolStillWorks) {
  SessionHarness h;
  EXPECT_EQ(h.Handle("!cache clear"), "OK cache cleared\n");
  const std::string unknown = h.Handle("!frobnicate");
  EXPECT_EQ(unknown.rfind("ERR ", 0), 0u);
  std::string out;
  EXPECT_FALSE(h.session->HandleLine("!quit", &out));
  EXPECT_EQ(out, "OK bye\n");
}

// ---------------------------------------------------------------------------
// Live workload recording
// ---------------------------------------------------------------------------

TEST(ServerSessionTest, RecordRoundTripsThroughTheWorkloadLoader) {
  const std::string path = TempPath("record_roundtrip.gqlw");
  SessionHarness h;
  h.Handle("!timing off");
  EXPECT_EQ(h.Handle("!record " + path), "OK recording to " + path + "\n");
  EXPECT_TRUE(h.session->recording());
  h.Handle("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)");
  h.Handle("MATCH ANY SHORTEST TRAIL p = (x)-[:Knows+]->(y)");
  h.Handle("THIS IS NOT GQL");  // errors are recorded too (no expect)
  EXPECT_EQ(h.Handle("!record stop"),
            "OK recorded 3 queries to " + path + "\n");
  EXPECT_FALSE(h.session->recording());

  auto workload = engine::LoadWorkloadFile(path);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  ASSERT_EQ(workload->entries.size(), 3u);
  EXPECT_EQ(workload->entries[0].query,
            "MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)");
  EXPECT_EQ(workload->entries[0].expect, std::optional<size_t>(12));
  EXPECT_EQ(workload->entries[1].expect, std::optional<size_t>(9));
  EXPECT_FALSE(workload->entries[2].expect.has_value());

  // The recorded workload replays cleanly with every expectation holding
  // except the deliberately-broken query's error (recorded, not fatal).
  auto report = engine::ReplayWorkload(*workload);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->errors, 1u);  // THIS IS NOT GQL
  EXPECT_EQ(report->expect_failures, 0u);
  std::remove(path.c_str());
}

TEST(ServerSessionTest, RecordCapturesTheSessionGraphAndThreads) {
  const std::string path = TempPath("record_graph.gqlw");
  SessionHarness h;
  h.Handle("!graph chain n=6 label=Knows");
  h.Handle("!threads 2");
  h.Handle("!record " + path);
  h.Handle("MATCH ALL WALK p = (?x)-[:Knows]->(?y)");
  h.Handle("!record stop");

  auto workload = engine::LoadWorkloadFile(path);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  EXPECT_EQ(workload->graph_spec, "chain n=6 label=Knows");
  EXPECT_EQ(workload->threads, std::optional<size_t>(2));
  ASSERT_EQ(workload->entries.size(), 1u);
  EXPECT_EQ(workload->entries[0].expect, std::optional<size_t>(5));
  std::remove(path.c_str());
}

TEST(ServerSessionTest, RecordSkipsExpectUnderNonDefaultLimits) {
  // .gqlw has no limits directive, so a cardinality shaped by !limits
  // (here: a truncated answer) must not be recorded as `# expect` — the
  // replay would run under default limits and fail the expectation.
  const std::string path = TempPath("record_limits.gqlw");
  SessionHarness h;
  h.Handle("!limits max_paths=2 truncate=1");
  h.Handle("!record " + path);
  h.Handle("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)");  // truncated: 4
  h.Handle("!record stop");

  auto workload = engine::LoadWorkloadFile(path);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  ASSERT_EQ(workload->entries.size(), 1u);
  EXPECT_FALSE(workload->entries[0].expect.has_value());
  auto report = engine::ReplayWorkload(*workload);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());  // replays clean (12 paths, nothing pinned)
  std::remove(path.c_str());
}

TEST(ServerSessionTest, RecordRefusesDoubleStartAndGraphSwap) {
  const std::string path = TempPath("record_refuse.gqlw");
  SessionHarness h;
  h.Handle("!record " + path);
  EXPECT_EQ(h.Handle("!record /tmp/other.gqlw").rfind("ERR already", 0), 0u);
  EXPECT_EQ(h.Handle("!graph chain n=4").rfind("ERR cannot swap graph", 0),
            0u);
  h.Handle("!record stop");
  EXPECT_EQ(h.Handle("!record stop").rfind("ERR no active recording", 0), 0u);
  std::remove(path.c_str());
}

TEST(ServerSessionTest, RecordFailsFastOnUnwritablePath) {
  SessionHarness h;
  const std::string response =
      h.Handle("!record /no/such/dir/recording.gqlw");
  EXPECT_EQ(response.rfind("ERR cannot write workload file", 0), 0u)
      << response;
  // The session is not left half-recording: queries run normally and a
  // good path still works.
  EXPECT_FALSE(h.session->recording());
  const std::string path = TempPath("record_good_after_bad.gqlw");
  EXPECT_EQ(h.Handle("!record " + path), "OK recording to " + path + "\n");
  h.Handle("!record stop");
  std::remove(path.c_str());
}

TEST(ServerSessionTest, RecordOnCsvGraphRoundTrips) {
  // A workload recorded on a csv-backed catalog graph must load and
  // replay — `# graph csv <path>` is a first-class .gqlw spec.
  const std::string csv_path = TempPath("record_csv_graph.csv");
  {
    std::ofstream file(csv_path);
    file << "N,a,Person\nN,b,Person\nN,c,Person\n"
         << "E,e1,a,b,Knows\nE,e2,b,c,Knows\n";
  }
  const std::string path = TempPath("record_csv.gqlw");
  SessionHarness h;
  EXPECT_EQ(h.Handle("!graph csv " + csv_path).rfind("OK graph 3 nodes", 0),
            0u);
  h.Handle("!record " + path);
  h.Handle("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)");
  h.Handle("!record stop");

  auto workload = engine::LoadWorkloadFile(path);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  EXPECT_EQ(workload->graph_spec, "csv " + csv_path);
  auto report = engine::ReplayWorkload(*workload);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok());
  EXPECT_EQ(report->queries[0].result_paths, 3u);  // a→b, b→c, a→b→c
  std::remove(path.c_str());
  std::remove(csv_path.c_str());
}

TEST(ServerSessionTest, RecordingFlushesOnSessionTeardown) {
  const std::string path = TempPath("record_teardown.gqlw");
  {
    SessionHarness h;
    h.Handle("!record " + path);
    h.Handle("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)");
    // Session destroyed with the recording still active (a TCP client
    // disconnecting mid-recording).
  }
  auto workload = engine::LoadWorkloadFile(path);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  EXPECT_EQ(workload->entries.size(), 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// TCP front-end
// ---------------------------------------------------------------------------

#ifdef __unix__

/// Replays `lines` over one TCP connection, returning every response
/// line. `*ok` is false on any transport error.
std::vector<std::string> TcpScript(uint16_t port,
                                   const std::vector<std::string>& lines,
                                   bool* ok) {
  std::vector<std::string> responses;
  *ok = false;
  LineClient client;
  if (!client.Connect(port).ok()) return responses;
  for (const std::string& line : lines) {
    auto response = client.RoundTrip(line);
    if (!response.ok()) return responses;
    responses.push_back(*response);
  }
  *ok = true;
  return responses;
}

/// The acceptance criterion: two concurrent TCP clients replaying
/// *different* workloads each get byte-identical responses to a serial
/// single-client run of the same request stream.
TEST(TcpServerTest, TwoConcurrentClientsMatchSerialRuns) {
  const std::vector<std::string> workload_a = {
      "!timing off",
      "MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)",
      "MATCH ANY SHORTEST TRAIL p = (x)-[:Knows+]->(y)",
      "MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)",
      "!limits max_paths=3 truncate=1",
      "MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)",
  };
  const std::vector<std::string> workload_b = {
      "!timing off",
      "MATCH ALL WALK p = (?x)-[:Likes/:Has_creator]->(?y)",
      "THIS IS NOT GQL",
      "!threads 2",
      "MATCH ANY SHORTEST p = (?x)-[:Knows+]->(?y)",
      "MATCH ALL WALK p = (?x)-[:Likes/:Has_creator]->(?y)",
  };

  // Serial references: each workload alone against a fresh server.
  std::vector<std::string> serial_a, serial_b;
  {
    GraphCatalog catalog;
    SessionManager manager(&catalog, {});
    TcpServer tcp(&manager);
    ASSERT_TRUE(tcp.Start({}).ok());
    bool ok = false;
    serial_a = TcpScript(tcp.port(), workload_a, &ok);
    ASSERT_TRUE(ok);
    serial_b = TcpScript(tcp.port(), workload_b, &ok);
    ASSERT_TRUE(ok);
    tcp.Stop();
  }
  ASSERT_EQ(serial_a.size(), workload_a.size());
  ASSERT_EQ(serial_b.size(), workload_b.size());

  // Concurrent run: both clients at once against one shared server.
  GraphCatalog catalog;
  SessionManager manager(&catalog, {});
  TcpServer tcp(&manager);
  ASSERT_TRUE(tcp.Start({}).ok());
  std::vector<std::string> concurrent_a, concurrent_b;
  std::atomic<bool> ok_a{false}, ok_b{false};
  std::thread ta([&] {
    bool ok = false;
    concurrent_a = TcpScript(tcp.port(), workload_a, &ok);
    ok_a = ok;
  });
  std::thread tb([&] {
    bool ok = false;
    concurrent_b = TcpScript(tcp.port(), workload_b, &ok);
    ok_b = ok;
  });
  ta.join();
  tb.join();
  tcp.Stop();
  ASSERT_TRUE(ok_a.load());
  ASSERT_TRUE(ok_b.load());
  EXPECT_EQ(concurrent_a, serial_a);
  EXPECT_EQ(concurrent_b, serial_b);
}

TEST(TcpServerTest, OverAdmissionGetsBusyLineAndClose) {
  GraphCatalog catalog;
  SessionManagerOptions options;
  options.max_sessions = 1;
  SessionManager manager(&catalog, options);
  TcpServer tcp(&manager);
  ASSERT_TRUE(tcp.Start({}).ok());

  LineClient holder;
  ASSERT_TRUE(holder.Connect(tcp.port()).ok());
  // Force the round trip so the holder's session is provably open before
  // the second connection races in.
  auto held = holder.RoundTrip("!timing off");
  ASSERT_TRUE(held.ok());

  LineClient refused;
  ASSERT_TRUE(refused.Connect(tcp.port()).ok());
  auto busy = refused.ReadLine();
  ASSERT_TRUE(busy.ok()) << busy.status().ToString();
  EXPECT_EQ(*busy, "BUSY max_sessions=1 reached, retry later");
  // The refused connection is closed server-side: next read is EOF.
  EXPECT_FALSE(refused.ReadLine().ok());

  // Releasing the held slot re-admits. The holder's handler processes
  // the EOF asynchronously on a pool worker, so retries may still see
  // BUSY (each one counting a rejection) until the slot is back.
  holder.Close();
  LineClient retry;
  ASSERT_TRUE(retry.Connect(tcp.port()).ok());
  bool admitted = false;
  for (int spin = 0; spin < 500 && !admitted; ++spin) {
    auto r = retry.RoundTrip("!timing off");
    if (r.ok() && *r == "OK timing off") {
      admitted = true;
      break;
    }
    retry.Close();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (!retry.Connect(tcp.port()).ok()) break;
  }
  EXPECT_TRUE(admitted);
  tcp.Stop();
  EXPECT_GE(manager.counters().rejected, 1u);
}

TEST(TcpServerTest, BrokenDefaultGraphAnswersErrNotBusy) {
  // A session-open failure that is not an admission refusal must read as
  // an error, not as a retryable BUSY: with max_sessions=0 (unlimited) a
  // BUSY line would tell the client to retry a graph spec that can never
  // load.
  GraphCatalog catalog;
  SessionManagerOptions options;
  options.max_sessions = 0;  // unlimited: admission can never refuse
  options.default_graph_spec = "no_such_generator n=4";
  SessionManager manager(&catalog, options);
  TcpServer tcp(&manager);
  ASSERT_TRUE(tcp.Start({}).ok());
  LineClient client;
  ASSERT_TRUE(client.Connect(tcp.port()).ok());
  auto line = client.ReadLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(line->rfind("ERR ", 0), 0u) << *line;
  EXPECT_EQ(line->find("BUSY"), std::string::npos) << *line;
  tcp.Stop();
  // A failed open mints nothing: the session counters stay clean.
  const server::SessionCounters c = manager.counters();
  EXPECT_EQ(c.opened, 0u);
  EXPECT_EQ(c.closed, 0u);
  EXPECT_EQ(c.active, 0u);
  EXPECT_EQ(c.peak_active, 0u);
}

TEST(TcpServerTest, StopCancelsInFlightQueriesUnderTheDrainDeadline) {
  // Graceful shutdown end to end: a query far exceeding the drain budget
  // is in flight when Stop() is called; Stop must close the intake, wait
  // out the (short) drain deadline, cancel the query through the
  // manager's shutdown token, and return — with the cancellation counted.
  GraphCatalog catalog;
  SessionManager manager(&catalog, {});
  TcpServer tcp(&manager);
  server::TcpServerOptions options;
  options.drain_deadline_ms = 50;
  ASSERT_TRUE(tcp.Start(options).ok());

  std::atomic<bool> query_sent{false};
  std::thread client([&] {
    LineClient c;
    if (!c.Connect(tcp.port()).ok()) return;
    if (!c.RoundTrip("!timing off").ok()) return;
    if (!c.RoundTrip("!limits max_paths=100000000 truncate=0").ok()) return;
    if (!c.RoundTrip("!graph social persons=300 seed=1").ok()) return;
    query_sent = true;
    // Runs for minutes if never cancelled; the drain must cut it short.
    // The response may be the cancellation ERR or a dropped connection
    // (the forced phase of Stop shuts the socket) — both are clean ends.
    (void)c.RoundTrip("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)");
  });
  for (int spin = 0; spin < 2000 && !query_sent; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(query_sent.load());
  // Let the query line reach the handler and start evaluating.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  tcp.Stop();  // returns ≈ drain deadline + cancellation latency later
  client.join();
  EXPECT_FALSE(tcp.running());
  EXPECT_EQ(manager.counters().active, 0u);
  EXPECT_GE(manager.counters().cancelled_queries, 1u);
  EXPECT_EQ(manager.counters().deadline_trips, 0u);
}

TEST(TcpServerTest, StopDrainsOpenConnections) {
  GraphCatalog catalog;
  SessionManager manager(&catalog, {});
  auto tcp = std::make_unique<TcpServer>(&manager);
  ASSERT_TRUE(tcp->Start({}).ok());
  LineClient idle;
  ASSERT_TRUE(idle.Connect(tcp->port()).ok());
  ASSERT_TRUE(idle.RoundTrip("!timing off").ok());
  tcp->Stop();  // must not hang on the idle connection
  EXPECT_FALSE(tcp->running());
  EXPECT_EQ(manager.counters().active, 0u);
  tcp.reset();
}

#endif  // __unix__

// ---------------------------------------------------------------------------
// Concurrent-session fuzz: per-session determinism under interleaving
// ---------------------------------------------------------------------------

/// Seeded per-session request streams drawn from a pool of protocol-level
/// behaviors: plain queries, limit changes, thread-count changes, errors.
std::vector<std::string> FuzzScript(uint64_t seed) {
  static const std::vector<std::string> kPool = {
      "MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)",
      "MATCH ANY SHORTEST TRAIL p = (x)-[:Knows+]->(y)",
      "MATCH ANY SHORTEST p = (?x)-[:Knows+]->(?y)",
      "MATCH ALL WALK p = (?x)-[:Likes/:Has_creator]->(?y)",
      "MATCH ALL ACYCLIC p = (?x)-[:Knows+]->(?y)",
      "THIS IS NOT GQL",
      "!limits max_paths=5 truncate=1",
      "!limits max_paths=1000000 truncate=0",
      "!threads 2",
      "!threads 1",
      "!cache clear",
  };
  std::mt19937_64 rng(seed);
  std::vector<std::string> script = {"!timing off"};
  const size_t n = 8 + rng() % 8;
  for (size_t i = 0; i < n; ++i) {
    script.push_back(kPool[rng() % kPool.size()]);
  }
  return script;
}

TEST(ServerFuzzTest, ConcurrentSessionsByteIdenticalToSerialRuns) {
  constexpr size_t kSessions = 6;
  constexpr uint64_t kSeedBase = 7700;

  // Serial references: one fresh single-session server per script.
  std::vector<std::vector<std::string>> scripts;
  std::vector<std::string> references;
  for (size_t s = 0; s < kSessions; ++s) {
    scripts.push_back(FuzzScript(kSeedBase + s));
    GraphCatalog catalog;
    SessionManager manager(&catalog, {});
    references.push_back(RunSessionScript(manager, scripts.back()));
    ASSERT_FALSE(references.back().empty());
  }

  // Concurrent run: all sessions at once over one shared catalog + cache,
  // repeated a few times to vary the interleaving.
  for (int trial = 0; trial < 3; ++trial) {
    GraphCatalog catalog;
    SessionManagerOptions options;
    options.max_sessions = kSessions;
    SessionManager manager(&catalog, options);
    std::vector<std::string> outputs(kSessions);
    std::vector<std::thread> threads;
    for (size_t s = 0; s < kSessions; ++s) {
      threads.emplace_back(
          [&, s] { outputs[s] = RunSessionScript(manager, scripts[s]); });
    }
    for (std::thread& t : threads) t.join();
    for (size_t s = 0; s < kSessions; ++s) {
      EXPECT_EQ(outputs[s], references[s])
          << "session " << s << " diverged from its serial run (trial "
          << trial << ", seed " << kSeedBase + s << ")";
    }
  }
}

}  // namespace
}  // namespace pathalg
