// The storage subsystem's differential harness: a snapshot-loaded graph
// must be *indistinguishable* from the freshly built graph it was written
// from. Seeded random multigraphs × random top-closure regexes (the same
// trial family as tests/fuzz_util.h) are evaluated on the fresh graph and
// on its write→reopen twin — in copy mode AND mmap mode — and the answers
// must match byte for byte (same paths, same insertion order) across all
// four bag semantics, plus walk on DAGs where its answer sets are finite.
//
// The served half pins the same contract one layer up: a ServerSession on
// a `snapshot <path>` catalog spec must produce the identical response
// transcript (with `!timing off`) and the identical `STAT graph_nodes=`
// line as a session on the generator spec the snapshot was written from.

#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz_util.h"
#include "plan/evaluator.h"
#include "regex/compile.h"
#include "regex/parser.h"
#include "server/graph_catalog.h"
#include "server/session.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"
#include "workload/generators.h"

namespace pathalg {
namespace {

using storage::SnapshotReader;
using storage::SnapshotWriter;

const std::vector<std::string> kRegexLabels = {"a", "b", "c", "d"};
const std::vector<std::string> kGraphLabels = {"a", "b", "c"};

constexpr size_t kTrialsPerSemantics = 120;

std::string TempPath(const std::string& stem) {
  return ::testing::TempDir() + "pathalg_snapshot_diff_" + stem;
}

PropertyGraph TrialGraph(std::mt19937_64& rng, bool acyclic) {
  UniformMultigraphOptions opts;
  opts.num_nodes = 4 + rng() % 5;   // 4..8
  opts.num_edges = 6 + rng() % 9;   // 6..14
  opts.labels = kGraphLabels;
  opts.unlabeled_percent = 15;
  opts.acyclic = acyclic;
  opts.seed = rng();
  return MakeUniformMultigraph(opts);
}

/// Evaluates `regex_text` on `fresh` and on `reopened`, requiring
/// byte-identical answers (or byte-identical errors).
::testing::AssertionResult CompareEval(const PropertyGraph& fresh,
                                       const PropertyGraph& reopened,
                                       const std::string& regex_text,
                                       PathSemantics semantics,
                                       const std::string& context) {
  auto fail = [&](const std::string& what) {
    return ::testing::AssertionFailure()
           << context << " regex `" << regex_text << "` semantics "
           << PathSemanticsToString(semantics) << ": " << what;
  };
  auto regex = ParseRegex(regex_text);
  if (!regex.ok()) return fail("regex parse: " + regex.status().ToString());
  CompileOptions copts;
  copts.semantics = semantics;
  PlanPtr plan = CompileRegex(*regex, copts);

  Result<PathSet> lhs = Evaluate(fresh, plan);
  Result<PathSet> rhs = Evaluate(reopened, plan);
  if (lhs.ok() != rhs.ok()) {
    return fail("fresh " + lhs.status().ToString() + " vs snapshot " +
                rhs.status().ToString());
  }
  if (!lhs.ok()) {
    if (lhs.status().ToString() != rhs.status().ToString()) {
      return fail("error mismatch: " + lhs.status().ToString() + " vs " +
                  rhs.status().ToString());
    }
    return ::testing::AssertionSuccess();
  }
  if (lhs->paths() != rhs->paths()) {
    return fail("fresh (" + std::to_string(lhs->size()) +
                " paths) != snapshot byte-for-byte (" +
                std::to_string(rhs->size()) + " paths)\n  fresh: " +
                lhs->ToString(fresh) + "\n  snapshot: " +
                rhs->ToString(reopened));
  }
  return ::testing::AssertionSuccess();
}

void RunFuzzLoop(PathSemantics semantics, bool acyclic_graphs) {
  // Unique per (semantics, graph family): CTest runs each TEST as its own
  // process, possibly in parallel — the suites must not race on one file.
  const std::string path =
      TempPath("fuzz_" + std::string(PathSemanticsToString(semantics)) +
               (acyclic_graphs ? "_dag" : "") + ".snap");
  for (uint64_t trial = 1; trial <= kTrialsPerSemantics; ++trial) {
    // Offset from the CSR/parallel harness streams so the three suites
    // explore different graphs.
    const uint64_t seed =
        trial * 48611u * 65537u + static_cast<uint64_t>(semantics);
    std::mt19937_64 rng(seed);
    PropertyGraph fresh = TrialGraph(rng, acyclic_graphs);
    std::string regex = fuzz::RandomTopClosureRegex(rng, kRegexLabels);
    const std::string context =
        "trial " + std::to_string(trial) + " seed " + std::to_string(seed);

    ASSERT_TRUE(SnapshotWriter::Write(fresh, path).ok()) << context;
    storage::OpenOptions copy_opts;
    copy_opts.mode = storage::OpenMode::kCopy;
    Result<PropertyGraph> copied = SnapshotReader::Open(path, copy_opts);
    ASSERT_TRUE(copied.ok()) << context << ": " << copied.status().ToString();
    Result<PropertyGraph> mapped = SnapshotReader::Open(path);
    ASSERT_TRUE(mapped.ok()) << context << ": " << mapped.status().ToString();

    EXPECT_TRUE(
        CompareEval(fresh, *copied, regex, semantics, context + " [copy]"));
    EXPECT_TRUE(
        CompareEval(fresh, *mapped, regex, semantics, context + " [mmap]"));
    if (::testing::Test::HasFailure()) break;  // one repro is enough
  }
  std::remove(path.c_str());
}

TEST(SnapshotDifferentialFuzz, Trail) {
  RunFuzzLoop(PathSemantics::kTrail, false);
}
TEST(SnapshotDifferentialFuzz, Acyclic) {
  RunFuzzLoop(PathSemantics::kAcyclic, false);
}
TEST(SnapshotDifferentialFuzz, Simple) {
  RunFuzzLoop(PathSemantics::kSimple, false);
}
TEST(SnapshotDifferentialFuzz, Shortest) {
  RunFuzzLoop(PathSemantics::kShortest, false);
}
TEST(SnapshotDifferentialFuzz, WalkOnRandomDags) {
  RunFuzzLoop(PathSemantics::kWalk, true);
}

// ---------------------------------------------------------------------------
// Served sessions: generator spec vs snapshot spec, identical transcripts.
// ---------------------------------------------------------------------------

/// Runs `lines` through one fresh session of `manager` opened on
/// `graph_spec`; returns the concatenated response stream.
std::string RunScript(server::SessionManager& manager,
                      const std::string& graph_spec,
                      const std::vector<std::string>& lines) {
  auto session = manager.Open(graph_spec);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  if (!session.ok()) return {};
  std::string out;
  for (const std::string& line : lines) {
    if (!(*session)->HandleLine(line, &out)) break;
  }
  return out;
}

/// The `STAT graph_nodes=...` line of a transcript ("" if absent).
std::string GraphStatLine(const std::string& transcript) {
  std::istringstream in(transcript);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("STAT graph_nodes=", 0) == 0) return line;
  }
  return {};
}

TEST(SnapshotDifferentialFuzz, ServedSessionTranscriptsMatch) {
  const std::string spec = "social persons=50 seed=11";
  const std::string path = TempPath("served.snap");

  // Write the snapshot from the catalog's own build of the spec, so both
  // sessions serve the same logical graph.
  server::GraphCatalog catalog;
  auto entry = catalog.Get(spec);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  ASSERT_TRUE(SnapshotWriter::Write(*(*entry)->graph, path).ok());

  server::SessionManager manager(&catalog, {});
  // `!timing off` makes query responses deterministic ("OK <n> paths");
  // one query per path semantics, then the graph stats.
  const std::vector<std::string> queries = {
      "!timing off",
      "MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)",
      "MATCH ALL ACYCLIC p = (?x)-[:Likes/:Has_creator]->(?y)",
      "MATCH ALL SIMPLE p = (?x)-[(:Likes/:Has_creator)+]->(?y)",
      "MATCH ANY SHORTEST p = (?x)-[:Knows+]->(?y)",
  };
  const std::string fresh_out = RunScript(manager, spec, queries);
  const std::string snap_out = RunScript(manager, "snapshot " + path, queries);
  EXPECT_EQ(fresh_out, snap_out);
  EXPECT_NE(fresh_out.find("OK "), std::string::npos) << fresh_out;

  // !stats transcripts differ in catalog counters across sessions, so the
  // graph line is compared on its own.
  const std::string fresh_stats = RunScript(manager, spec, {"!stats"});
  const std::string snap_stats =
      RunScript(manager, "snapshot " + path, {"!stats"});
  const std::string fresh_line = GraphStatLine(fresh_stats);
  ASSERT_FALSE(fresh_line.empty()) << fresh_stats;
  EXPECT_EQ(fresh_line, GraphStatLine(snap_stats));

  std::remove(path.c_str());
}

}  // namespace
}  // namespace pathalg
