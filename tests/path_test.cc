// Unit tests for the path data model (§2.2, §3.1): construction, the
// 1-based path operators, concatenation ◦, the walk/trail/acyclic/simple
// classification, PathSet semantics and the graph-aware accessors.

#include <gtest/gtest.h>

#include "path/path.h"
#include "path/path_ops.h"
#include "path/path_set.h"
#include "workload/figure1.h"

namespace pathalg {
namespace {

class PathTest : public ::testing::Test {
 protected:
  void SetUp() override { g_ = MakeFigure1Graph(&ids_); }
  PropertyGraph g_;
  Figure1Ids ids_;
};

TEST_F(PathTest, SingleNodeHasLengthZero) {
  Path p = Path::SingleNode(ids_.n1);
  EXPECT_EQ(p.Len(), 0u);
  EXPECT_EQ(p.First(), ids_.n1);
  EXPECT_EQ(p.Last(), ids_.n1);
  EXPECT_EQ(p.NodeAt(1), ids_.n1);
  EXPECT_EQ(p.EdgeAt(1), kInvalidId);
}

TEST_F(PathTest, EdgeOfBuildsLengthOnePath) {
  Path p = Path::EdgeOf(g_, ids_.e1);
  EXPECT_EQ(p.Len(), 1u);
  EXPECT_EQ(p.First(), ids_.n1);
  EXPECT_EQ(p.Last(), ids_.n2);
  EXPECT_EQ(p.EdgeAt(1), ids_.e1);
}

TEST_F(PathTest, PositionsAreOneBased) {
  // p = (n1, e1, n2, e2, n3): Node(p,2) = n2, Edge(p,1) = e1 (§3.1).
  Path p({ids_.n1, ids_.n2, ids_.n3}, {ids_.e1, ids_.e2});
  EXPECT_EQ(p.Len(), 2u);
  EXPECT_EQ(p.NodeAt(1), ids_.n1);
  EXPECT_EQ(p.NodeAt(2), ids_.n2);
  EXPECT_EQ(p.NodeAt(3), ids_.n3);
  EXPECT_EQ(p.NodeAt(4), kInvalidId);
  EXPECT_EQ(p.NodeAt(0), kInvalidId);
  EXPECT_EQ(p.EdgeAt(1), ids_.e1);
  EXPECT_EQ(p.EdgeAt(2), ids_.e2);
  EXPECT_EQ(p.EdgeAt(3), kInvalidId);
}

TEST_F(PathTest, ConcatMatchesPaperExample) {
  // §3.1: p1 = (n1, e1, n2), p2 = (n2, e3, n3) → (n1, e1, n2, e3, n3).
  // (Figure 1's e3 goes n3→n2, so use e2:(n2→n3) as the paper's "e3".)
  Path p1 = Path::EdgeOf(g_, ids_.e1);
  Path p2 = Path::EdgeOf(g_, ids_.e2);
  Result<Path> r = Path::Concat(p1, p2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Len(), 2u);
  EXPECT_EQ(r->First(), ids_.n1);
  EXPECT_EQ(r->Last(), ids_.n3);
  EXPECT_EQ(r->ToString(g_), "(n1, e1, n2, e2, n3)");
}

TEST_F(PathTest, ConcatRequiresMatchingEndpoints) {
  Path p1 = Path::EdgeOf(g_, ids_.e1);  // ends at n2
  Path p2 = Path::EdgeOf(g_, ids_.e8);  // starts at n1
  EXPECT_TRUE(Path::Concat(p1, p2).status().IsInvalidArgument());
  EXPECT_TRUE(Path::Concat(Path(), p1).status().IsInvalidArgument());
}

TEST_F(PathTest, ConcatWithZeroLengthPathIsIdentity) {
  Path p = Path::EdgeOf(g_, ids_.e1);
  Path node = Path::SingleNode(ids_.n2);
  Result<Path> right = Path::Concat(p, node);
  ASSERT_TRUE(right.ok());
  EXPECT_EQ(*right, p);
  Result<Path> left = Path::Concat(Path::SingleNode(ids_.n1), p);
  ASSERT_TRUE(left.ok());
  EXPECT_EQ(*left, p);
}

TEST_F(PathTest, ClassificationOnPaperTable3Paths) {
  // p2 of Table 3: (n1, e1, n2, e2, n3, e3, n2) — trail, not acyclic,
  // not simple (n2 repeats and is not the first node).
  Path p2({ids_.n1, ids_.n2, ids_.n3, ids_.n2}, {ids_.e1, ids_.e2, ids_.e3});
  EXPECT_TRUE(p2.IsTrail());
  EXPECT_FALSE(p2.IsAcyclic());
  EXPECT_FALSE(p2.IsSimple());

  // p4: (n1, e1, n2, e2, n3, e3, n2, e2, n3) — repeats e2: not a trail.
  Path p4({ids_.n1, ids_.n2, ids_.n3, ids_.n2, ids_.n3},
          {ids_.e1, ids_.e2, ids_.e3, ids_.e2});
  EXPECT_FALSE(p4.IsTrail());
  EXPECT_FALSE(p4.IsAcyclic());
  EXPECT_FALSE(p4.IsSimple());

  // p7: (n2, e2, n3, e3, n2) — a closed simple path (first == last).
  Path p7({ids_.n2, ids_.n3, ids_.n2}, {ids_.e2, ids_.e3});
  EXPECT_TRUE(p7.IsTrail());
  EXPECT_FALSE(p7.IsAcyclic());
  EXPECT_TRUE(p7.IsSimple());

  // p5: (n1, e1, n2, e4, n4) — acyclic (hence simple and a trail).
  Path p5({ids_.n1, ids_.n2, ids_.n4}, {ids_.e1, ids_.e4});
  EXPECT_TRUE(p5.IsAcyclic());
  EXPECT_TRUE(p5.IsSimple());
  EXPECT_TRUE(p5.IsTrail());
}

TEST_F(PathTest, ClassificationContainments) {
  // Acyclic ⊆ simple; zero-length paths are everything.
  Path node = Path::SingleNode(ids_.n1);
  EXPECT_TRUE(node.IsAcyclic());
  EXPECT_TRUE(node.IsSimple());
  EXPECT_TRUE(node.IsTrail());
  // A closed walk visiting an interior node twice is not simple:
  // (n2, e2, n3, e3, n2, e2, n3, e3, n2) — interior n3, n2 repeat.
  Path closed({ids_.n2, ids_.n3, ids_.n2, ids_.n3, ids_.n2},
              {ids_.e2, ids_.e3, ids_.e2, ids_.e3});
  EXPECT_FALSE(closed.IsSimple());
  EXPECT_FALSE(closed.IsTrail());
}

TEST_F(PathTest, ValidateChecksRho) {
  Path good = Path::EdgeOf(g_, ids_.e1);
  EXPECT_TRUE(good.Validate(g_).ok());
  // e2 connects n2→n3, not n1→n2.
  Path bad({ids_.n1, ids_.n2}, {ids_.e2});
  EXPECT_TRUE(bad.Validate(g_).IsInvalidArgument());
  Path unknown_edge({ids_.n1, ids_.n2}, {999});
  EXPECT_TRUE(unknown_edge.Validate(g_).IsInvalidArgument());
  Path unknown_node({999}, {});
  EXPECT_TRUE(unknown_node.Validate(g_).IsInvalidArgument());
  EXPECT_TRUE(Path().Validate(g_).IsInvalidArgument());
}

TEST_F(PathTest, CanonicalOrderIsLengthThenIds) {
  Path a = Path::SingleNode(ids_.n1);
  Path b = Path::EdgeOf(g_, ids_.e1);
  Path c = Path::EdgeOf(g_, ids_.e2);
  EXPECT_LT(a, b);  // shorter first
  EXPECT_LT(b, c);  // then by node ids
  EXPECT_FALSE(c < b);
}

TEST_F(PathTest, EqualityAndHash) {
  Path a = Path::EdgeOf(g_, ids_.e1);
  Path b = Path::SingleEdge(ids_.n1, ids_.e1, ids_.n2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  Path c = Path::EdgeOf(g_, ids_.e2);
  EXPECT_NE(a, c);
}

TEST_F(PathTest, PathSetDeduplicates) {
  PathSet s;
  EXPECT_TRUE(s.Insert(Path::EdgeOf(g_, ids_.e1)));
  EXPECT_FALSE(s.Insert(Path::EdgeOf(g_, ids_.e1)));
  EXPECT_TRUE(s.Insert(Path::EdgeOf(g_, ids_.e2)));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(Path::EdgeOf(g_, ids_.e1)));
  EXPECT_FALSE(s.Contains(Path::SingleNode(ids_.n1)));
}

TEST_F(PathTest, PathSetInsertHashedMatchesInsert) {
  // InsertHashed with the correct precomputed hash must make byte-for-byte
  // the same dedup decisions and produce the same insertion order as
  // Insert — it is what the parallel merge loops rely on.
  std::vector<Path> inputs = {
      Path::EdgeOf(g_, ids_.e1), Path::EdgeOf(g_, ids_.e2),
      Path::EdgeOf(g_, ids_.e1),  // duplicate
      Path({ids_.n1, ids_.n2, ids_.n3}, {ids_.e1, ids_.e2}),
      Path::SingleNode(ids_.n1),
      Path({ids_.n1, ids_.n2, ids_.n3}, {ids_.e1, ids_.e2}),  // duplicate
  };
  PathSet via_insert, via_hashed;
  for (const Path& p : inputs) {
    const bool a = via_insert.Insert(p);
    const bool b = via_hashed.InsertHashed(p, p.Hash());
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(via_insert.paths(), via_hashed.paths());  // same order, too
  EXPECT_EQ(via_hashed.size(), 4u);
  EXPECT_TRUE(via_hashed.Contains(Path::EdgeOf(g_, ids_.e2)));
}

TEST_F(PathTest, PathSetHashCollisionsStillCompareByValue) {
  // A wrong-but-shared hash may only ever cause extra equality probes,
  // never a false dedup: distinct paths inserted under one hash bucket
  // must both survive and remain findable.
  PathSet s;
  Path a = Path::EdgeOf(g_, ids_.e1);
  Path b = Path::EdgeOf(g_, ids_.e2);
  EXPECT_TRUE(s.InsertHashed(a, 42));
  EXPECT_TRUE(s.InsertHashed(b, 42));   // collides, but a != b
  EXPECT_FALSE(s.InsertHashed(a, 42));  // exact duplicate in the bucket
  EXPECT_EQ(s.size(), 2u);
}

TEST_F(PathTest, PathSetEqualityIsOrderInsensitive) {
  PathSet a, b;
  a.Insert(Path::EdgeOf(g_, ids_.e1));
  a.Insert(Path::EdgeOf(g_, ids_.e2));
  b.Insert(Path::EdgeOf(g_, ids_.e2));
  b.Insert(Path::EdgeOf(g_, ids_.e1));
  EXPECT_EQ(a, b);
  b.Insert(Path::EdgeOf(g_, ids_.e3));
  EXPECT_NE(a, b);
}

TEST_F(PathTest, NodesOfAndEdgesOfAreTheAtoms) {
  PathSet nodes = NodesOf(g_);
  PathSet edges = EdgesOf(g_);
  EXPECT_EQ(nodes.size(), 7u);
  EXPECT_EQ(edges.size(), 11u);
  for (const Path& p : nodes) EXPECT_EQ(p.Len(), 0u);
  for (const Path& p : edges) EXPECT_EQ(p.Len(), 1u);
}

TEST_F(PathTest, GraphAwareAccessors) {
  Path p({ids_.n1, ids_.n2, ids_.n3}, {ids_.e1, ids_.e2});
  EXPECT_EQ(LabelOfNodeAt(g_, p, 1), "Person");
  EXPECT_EQ(LabelOfEdgeAt(g_, p, 1), "Knows");
  EXPECT_EQ(LabelOfEdgeAt(g_, p, 9), "");
  const Value* name = PropOfNodeAt(g_, p, 1, "name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(*name, Value("Moe"));
  EXPECT_EQ(PropOfNodeAt(g_, p, 1, "missing"), nullptr);
  EXPECT_EQ(PropOfEdgeAt(g_, p, 1, "missing"), nullptr);
  EXPECT_EQ(PropOfNodeAt(g_, p, 17, "name"), nullptr);
}

TEST_F(PathTest, PathWordConcatenatesEdgeLabels) {
  // λ(p) for (n1)-Likes->(n6)-Has_creator->(n3) = "LikesHas_creator" (§2.2).
  Path p({ids_.n1, ids_.n6, ids_.n3}, {ids_.e8, ids_.e11});
  EXPECT_EQ(PathWord(g_, p), "LikesHas_creator");
  EXPECT_EQ(PathWord(g_, Path::SingleNode(ids_.n1)), "");
}

TEST_F(PathTest, ToStringFormats) {
  Path p({ids_.n1, ids_.n2}, {ids_.e1});
  EXPECT_EQ(p.ToString(g_), "(n1, e1, n2)");
  EXPECT_EQ(Path::SingleNode(ids_.n5).ToString(g_), "(n5)");
  PathSet s;
  s.Insert(Path::SingleNode(ids_.n1));
  s.Insert(p);
  EXPECT_EQ(s.ToString(g_), "{(n1), (n1, e1, n2)}");
}

}  // namespace
}  // namespace pathalg
