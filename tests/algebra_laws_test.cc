// Algebraic-law property tests: the equational theory the optimizer (and
// any future cost-based planner) relies on, checked over seeded random
// graphs and path sets. These are the "algebra facilitates optimization"
// claims of §7.3 made executable.

#include <gtest/gtest.h>

#include "algebra/core_ops.h"
#include "algebra/recursive.h"
#include "algebra/solution_space.h"
#include "path/path_ops.h"
#include "workload/generators.h"

namespace pathalg {
namespace {

struct LawsCase {
  uint64_t seed;
};

class AlgebraLawsTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    g_ = MakeRandomGraph(8, 14, {"a", "b"}, GetParam());
    a_ = Select(g_, EdgesOf(g_), *EdgeLabelEq(1, "a"));
    b_ = Select(g_, EdgesOf(g_), *EdgeLabelEq(1, "b"));
    ab_ = Join(a_, b_);
    mixed_ = Union(Union(a_, ab_), NodesOf(g_));
  }
  PropertyGraph g_;
  PathSet a_, b_, ab_, mixed_;
};

TEST_P(AlgebraLawsTest, UnionAci) {
  // Associative, commutative, idempotent.
  EXPECT_EQ(Union(a_, b_), Union(b_, a_));
  EXPECT_EQ(Union(Union(a_, b_), ab_), Union(a_, Union(b_, ab_)));
  EXPECT_EQ(Union(mixed_, mixed_), mixed_);
}

TEST_P(AlgebraLawsTest, IntersectionAndDifferenceLaws) {
  EXPECT_EQ(Intersect(a_, b_), Intersect(b_, a_));
  EXPECT_EQ(Intersect(mixed_, mixed_), mixed_);
  EXPECT_TRUE(Difference(mixed_, mixed_).empty());
  // A = (A ∩ B) ∪ (A − B).
  EXPECT_EQ(Union(Intersect(mixed_, a_), Difference(mixed_, a_)), mixed_);
  // De Morgan-ish within a universe: (A ∪ B) − C = (A − C) ∪ (B − C).
  EXPECT_EQ(Difference(Union(a_, b_), ab_),
            Union(Difference(a_, ab_), Difference(b_, ab_)));
}

TEST_P(AlgebraLawsTest, JoinMonoidWithNodesIdentity) {
  // Associativity.
  EXPECT_EQ(Join(Join(a_, b_), a_), Join(a_, Join(b_, a_)));
  // Nodes(G) is a two-sided identity.
  PathSet nodes = NodesOf(g_);
  EXPECT_EQ(Join(mixed_, nodes), mixed_);
  EXPECT_EQ(Join(nodes, mixed_), mixed_);
}

TEST_P(AlgebraLawsTest, JoinDistributesOverUnion) {
  EXPECT_EQ(Join(Union(a_, b_), ab_),
            Union(Join(a_, ab_), Join(b_, ab_)));
  EXPECT_EQ(Join(ab_, Union(a_, b_)),
            Union(Join(ab_, a_), Join(ab_, b_)));
}

TEST_P(AlgebraLawsTest, SelectionLaws) {
  auto c1 = FirstLabelEq("Node");
  auto c2 = LenCompare(CompareOp::kGe, 1);
  // σ commutes: σc1(σc2(S)) = σc2(σc1(S)) = σ(c1 ∧ c2)(S).
  EXPECT_EQ(Select(g_, Select(g_, mixed_, *c2), *c1),
            Select(g_, Select(g_, mixed_, *c1), *c2));
  EXPECT_EQ(Select(g_, Select(g_, mixed_, *c2), *c1),
            Select(g_, mixed_, *Condition::And(c1, c2)));
  // σ distributes over ∪ / ∩ / −.
  EXPECT_EQ(Select(g_, Union(a_, ab_), *c2),
            Union(Select(g_, a_, *c2), Select(g_, ab_, *c2)));
  EXPECT_EQ(Select(g_, Intersect(mixed_, a_), *c2),
            Intersect(Select(g_, mixed_, *c2), Select(g_, a_, *c2)));
  EXPECT_EQ(Select(g_, Difference(mixed_, a_), *c2),
            Difference(Select(g_, mixed_, *c2), a_));
  // σtrue = id; σ(¬c)(S) = S − σc(S).
  EXPECT_EQ(Select(g_, mixed_, *Condition::Or(c2, Condition::Not(c2))),
            mixed_);
  EXPECT_EQ(Select(g_, mixed_, *Condition::Not(c1)),
            Difference(mixed_, Select(g_, mixed_, *c1)));
}

TEST_P(AlgebraLawsTest, FirstConditionCommutesWithRightJoin) {
  // σ_first(A ⋈ B) = σ_first(A) ⋈ B — the Figure 6 pushdown law.
  auto c = NodePropEq(1, "id", Value(0));
  EXPECT_EQ(Select(g_, Join(a_, b_), *c), Join(Select(g_, a_, *c), b_));
  // σ_last(A ⋈ B) = A ⋈ σ_last(B).
  auto cl = LastPropEq("id", Value(1));
  EXPECT_EQ(Select(g_, Join(a_, b_), *cl), Join(a_, Select(g_, b_, *cl)));
}

TEST_P(AlgebraLawsTest, RestrictLaws) {
  PathSet walks = *Recursive(Union(a_, b_), PathSemantics::kWalk,
                             {.max_path_length = 4, .truncate = true});
  for (PathSemantics sem :
       {PathSemantics::kTrail, PathSemantics::kAcyclic,
        PathSemantics::kSimple, PathSemantics::kShortest}) {
    // Idempotence.
    PathSet once = RestrictPaths(walks, sem);
    EXPECT_EQ(RestrictPaths(once, sem), once);
  }
  // Non-shortest restrictors commute (they are per-path filters).
  EXPECT_EQ(
      RestrictPaths(RestrictPaths(walks, PathSemantics::kTrail),
                    PathSemantics::kSimple),
      RestrictPaths(RestrictPaths(walks, PathSemantics::kSimple),
                    PathSemantics::kTrail));
  // Lattice: acyclic ⊆ simple ⊆ trail.
  EXPECT_EQ(RestrictPaths(RestrictPaths(walks, PathSemantics::kSimple),
                          PathSemantics::kAcyclic),
            RestrictPaths(walks, PathSemantics::kAcyclic));
  EXPECT_EQ(RestrictPaths(RestrictPaths(walks, PathSemantics::kTrail),
                          PathSemantics::kSimple),
            RestrictPaths(walks, PathSemantics::kSimple));
}

TEST_P(AlgebraLawsTest, PhiLaws) {
  EvalLimits bounded{.max_path_length = 4, .truncate = true};
  for (PathSemantics sem :
       {PathSemantics::kTrail, PathSemantics::kAcyclic,
        PathSemantics::kSimple, PathSemantics::kShortest}) {
    PathSet once = *Recursive(a_, sem);
    // ϕ idempotence (the recursive-idempotent optimizer rule).
    // For shortest the re-application sees composite base paths; for the
    // filters the prefix-closure argument applies.
    PathSet twice = *Recursive(once, sem);
    EXPECT_EQ(once, twice) << PathSemanticsToString(sem);
    // ϕ(S) ⊇ filtered S (the base is included).
    for (const Path& p : RestrictPaths(a_, sem)) {
      EXPECT_TRUE(once.Contains(p));
    }
  }
  // ϕ(S ∪ Nodes) = ϕ(S) ∪ Nodes for non-shortest semantics.
  PathSet with_nodes = *Recursive(Union(a_, NodesOf(g_)),
                                  PathSemantics::kTrail, bounded);
  PathSet hoisted = Union(*Recursive(a_, PathSemantics::kTrail, bounded),
                          NodesOf(g_));
  EXPECT_EQ(with_nodes, hoisted);
}

TEST_P(AlgebraLawsTest, ProjectionMonotonicity) {
  PathSet trails = *Recursive(Union(a_, b_), PathSemantics::kTrail,
                              {.max_path_length = 4, .truncate = true});
  SolutionSpace ss = OrderBy(GroupBy(trails, GroupKey::kST), OrderKey::kA);
  PathSet prev;
  for (size_t k = 1; k <= 4; ++k) {
    auto cur = Project(ss, {std::nullopt, std::nullopt, k});
    ASSERT_TRUE(cur.ok());
    // π(*,*,k) ⊆ π(*,*,k+1): monotone in k.
    for (const Path& p : prev) EXPECT_TRUE(cur->Contains(p));
    prev = *cur;
  }
  auto all = Project(ss, {std::nullopt, std::nullopt, std::nullopt});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, trails);  // π(*,*,*) is the identity on the set level
}

TEST_P(AlgebraLawsTest, GroupByPartitionInvariants) {
  PathSet trails = *Recursive(Union(a_, b_), PathSemantics::kTrail,
                              {.max_path_length = 3, .truncate = true});
  for (GroupKey key :
       {GroupKey::kNone, GroupKey::kS, GroupKey::kT, GroupKey::kL,
        GroupKey::kST, GroupKey::kSL, GroupKey::kTL, GroupKey::kSTL}) {
    SolutionSpace ss = GroupBy(trails, key);
    // Every path lands in exactly one group; groups partition the set.
    size_t total = 0;
    for (size_t grp = 0; grp < ss.num_groups(); ++grp) {
      total += ss.PathsOfGroup(grp).size();
      for (uint32_t ix : ss.PathsOfGroup(grp)) {
        EXPECT_EQ(ss.GroupOfPath(ix), grp);
      }
    }
    EXPECT_EQ(total, trails.size());
    // Groups partition into partitions.
    size_t total_groups = 0;
    for (size_t p = 0; p < ss.num_partitions(); ++p) {
      total_groups += ss.GroupsOfPartition(p).size();
      for (uint32_t grp : ss.GroupsOfPartition(p)) {
        EXPECT_EQ(ss.PartitionOfGroup(grp), p);
      }
    }
    EXPECT_EQ(total_groups, ss.num_groups());
  }
}

TEST_P(AlgebraLawsTest, WalkAnswerMonotoneInLengthBudget) {
  PathSet smaller = *Recursive(Union(a_, b_), PathSemantics::kWalk,
                               {.max_path_length = 2, .truncate = true});
  PathSet larger = *Recursive(Union(a_, b_), PathSemantics::kWalk,
                              {.max_path_length = 4, .truncate = true});
  for (const Path& p : smaller) {
    EXPECT_TRUE(larger.Contains(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraLawsTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace pathalg
