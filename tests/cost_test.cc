// Tests for the cost model (stats collection, selectivity estimation,
// plan-cost ranking) and the cost-based join-reassociation rule.

#include <gtest/gtest.h>

#include <algorithm>

#include "plan/cost.h"
#include "plan/evaluator.h"
#include "plan/optimizer.h"
#include "workload/figure1.h"
#include "workload/generators.h"

namespace pathalg {
namespace {

bool Applied(const OptimizeResult& r, std::string_view rule) {
  return std::find(r.applied.begin(), r.applied.end(), rule) !=
         r.applied.end();
}

TEST(GraphStatsTest, CollectCountsLabels) {
  PropertyGraph g = MakeFigure1Graph();
  GraphStats stats = GraphStats::Collect(g);
  EXPECT_EQ(stats.num_nodes, 7u);
  EXPECT_EQ(stats.num_edges, 11u);
  EXPECT_EQ(stats.edge_label_counts.at("Knows"), 4u);
  EXPECT_EQ(stats.edge_label_counts.at("Likes"), 4u);
  EXPECT_EQ(stats.edge_label_counts.at("Has_creator"), 3u);
  EXPECT_EQ(stats.node_label_counts.at("Person"), 4u);
  EXPECT_EQ(stats.node_label_counts.at("Message"), 3u);
}

TEST(CostTest, SelectivityUsesLabelHistograms) {
  GraphStats stats = GraphStats::Collect(MakeFigure1Graph());
  EXPECT_DOUBLE_EQ(EstimateSelectivity(*EdgeLabelEq(1, "Knows"), stats),
                   4.0 / 11.0);
  EXPECT_DOUBLE_EQ(
      EstimateSelectivity(*EdgeLabelEq(1, "Has_creator"), stats),
      3.0 / 11.0);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(*EdgeLabelEq(1, "NoSuch"), stats),
                   0.0);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(*FirstLabelEq("Person"), stats),
                   4.0 / 7.0);
  // Endpoint property lookup ≈ one node out of N.
  EXPECT_DOUBLE_EQ(
      EstimateSelectivity(*FirstPropEq("name", Value("Moe")), stats),
      1.0 / 7.0);
}

TEST(CostTest, BooleanCombinators) {
  GraphStats stats = GraphStats::Collect(MakeFigure1Graph());
  auto knows = EdgeLabelEq(1, "Knows");       // 4/11
  auto person = FirstLabelEq("Person");       // 4/7
  double sk = 4.0 / 11.0, sp = 4.0 / 7.0;
  EXPECT_DOUBLE_EQ(
      EstimateSelectivity(*Condition::And(knows, person), stats), sk * sp);
  EXPECT_DOUBLE_EQ(
      EstimateSelectivity(*Condition::Or(knows, person), stats),
      sk + sp - sk * sp);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(*Condition::Not(knows), stats),
                   1.0 - sk);
}

TEST(CostTest, CardinalityIsExactForScansAndProportionalForSelects) {
  PropertyGraph g = MakeFigure1Graph();
  GraphStats stats = GraphStats::Collect(g);
  EXPECT_DOUBLE_EQ(EstimateCost(PlanNode::NodesScan(), stats).cardinality,
                   7.0);
  EXPECT_DOUBLE_EQ(EstimateCost(PlanNode::EdgesScan(), stats).cardinality,
                   11.0);
  PlanPtr knows =
      PlanNode::Select(EdgeLabelEq(1, "Knows"), PlanNode::EdgesScan());
  // 11 * 4/11 = 4 — exact here because labels partition the edges.
  EXPECT_DOUBLE_EQ(EstimateCost(knows, stats).cardinality, 4.0);
}

TEST(CostTest, SelectiveFilterReducesEstimatedCost) {
  GraphStats stats = GraphStats::Collect(MakeFigure1Graph());
  PlanPtr knows =
      PlanNode::Select(EdgeLabelEq(1, "Knows"), PlanNode::EdgesScan());
  PlanPtr filtered_join = PlanNode::Join(
      PlanNode::Select(FirstPropEq("name", Value("Moe")), knows), knows);
  PlanPtr unfiltered_join = PlanNode::Join(knows, knows);
  EXPECT_LT(EstimateCost(filtered_join, stats).cardinality,
            EstimateCost(unfiltered_join, stats).cardinality);
  // A ϕ dominates the cost of its input.
  PlanPtr phi = PlanNode::Recursive(PathSemantics::kTrail, knows);
  EXPECT_GT(EstimateCost(phi, stats).cost,
            EstimateCost(knows, stats).cost);
}

TEST(CostTest, NullPlanIsFree) {
  GraphStats stats;
  EXPECT_DOUBLE_EQ(EstimateCost(nullptr, stats).cost, 0.0);
}

TEST(JoinReassociationTest, PicksCheaperAssociation) {
  // Skewed labels: "rare" has 2 edges, "bulk" has many. The plan
  // (bulk ⋈ bulk) ⋈ rare has a huge intermediate; bulk ⋈ (bulk ⋈ rare)
  // is cheaper under the model.
  GraphBuilder b;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 10; ++i) nodes.push_back(b.AddNode("N"));
  for (int i = 0; i < 9; ++i) {
    for (int j = 0; j < 3; ++j) {
      (void)b.AddEdge(nodes[i], nodes[i + 1], "bulk");
    }
  }
  (void)b.AddEdge(nodes[1], nodes[2], "rare");
  (void)b.AddEdge(nodes[4], nodes[5], "rare");
  PropertyGraph g = b.Build();
  GraphStats stats = GraphStats::Collect(g);

  PlanPtr bulk =
      PlanNode::Select(EdgeLabelEq(1, "bulk"), PlanNode::EdgesScan());
  PlanPtr rare =
      PlanNode::Select(EdgeLabelEq(1, "rare"), PlanNode::EdgesScan());
  PlanPtr left_heavy = PlanNode::Join(PlanNode::Join(bulk, bulk), rare);

  OptimizerOptions opts;
  opts.stats = &stats;
  OptimizeResult opt = Optimize(left_heavy, opts);
  EXPECT_TRUE(Applied(opt, "join-reassociation"));
  // The rewrite chose bulk ⋈ (bulk ⋈ rare).
  ASSERT_EQ(opt.plan->kind(), PlanKind::kJoin);
  EXPECT_EQ(opt.plan->child(1)->kind(), PlanKind::kJoin);
  // Results are preserved (associativity).
  auto before = Evaluate(g, left_heavy);
  auto after = Evaluate(g, opt.plan);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);
}

TEST(JoinReassociationTest, NoStatsNoRewrite) {
  PlanPtr knows = PlanNode::Select(EdgeLabelEq(1, "bulk"),
                                   PlanNode::EdgesScan());
  PlanPtr plan = PlanNode::Join(PlanNode::Join(knows, knows), knows);
  OptimizeResult opt = Optimize(plan);  // default: stats == nullptr
  EXPECT_FALSE(Applied(opt, "join-reassociation"));
}

TEST(JoinReassociationTest, StableWhenAlreadyOptimal) {
  // An already-cheap association is left alone (strict improvement only),
  // and optimization reaches a fixpoint (no oscillation).
  PropertyGraph g = MakeRandomGraph(8, 20, {"a"}, 3);
  GraphStats stats = GraphStats::Collect(g);
  PlanPtr a = PlanNode::Select(EdgeLabelEq(1, "a"), PlanNode::EdgesScan());
  PlanPtr balanced = PlanNode::Join(a, PlanNode::Join(a, a));
  OptimizerOptions opts;
  opts.stats = &stats;
  OptimizeResult once = Optimize(balanced, opts);
  OptimizeResult twice = Optimize(once.plan, opts);
  EXPECT_TRUE(once.plan->Equals(*twice.plan));
}

}  // namespace
}  // namespace pathalg
