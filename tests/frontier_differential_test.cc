/// \file frontier_differential_test.cc
/// Differential contract of the NFA-fused frontier engine
/// (algebra/frontier_closure.h) against the materializing ϕ engines and
/// the automaton baseline:
///
///   FrontierClosure(g, r, sem)  ≡  ϕ_sem(Eval(compile(r)))   (semi-naive,
///                                                             naive)
///                               ≡  EvaluateRpqAutomaton(g, r+)
///
/// per-engine byte-identical at t ∈ {1, 2, 4, 8} (results, partial
/// answers and Status), plus the exact-budget edge-case sweep of
/// algebra/eval_budget.h: max_paths at {0, 1, |base|, |answer|−1,
/// |answer|}, max_iterations at {0, 1}, truncate on and off — Status must
/// be byte-equal across engines (the trip predicates are pure functions
/// of the query, never of enumeration order), truncated partial answers
/// must have exactly min(max_paths, |answer|) paths and be subsets of the
/// full answer. Suite names carry "Differential" so the TSan CI lane's
/// `ctest -R Differential` regex picks every case up.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "algebra/frontier_closure.h"
#include "algebra/recursive.h"
#include "baseline/automaton_eval.h"
#include "plan/evaluator.h"
#include "regex/ast.h"
#include "regex/compile.h"
#include "workload/generators.h"

namespace pathalg {
namespace {

const std::vector<std::string> kLabels = {"a", "b", "c"};

/// A random closure-free regex (labels / concat / union only) — the
/// family FrontierEligible admits.
RegexPtr RandomClosureFreeRegex(std::mt19937_64& rng, int depth) {
  if (depth <= 0 || rng() % 3 == 0) {
    return RegexNode::Label(kLabels[rng() % kLabels.size()]);
  }
  RegexPtr l = RandomClosureFreeRegex(rng, depth - 1);
  RegexPtr r = RandomClosureFreeRegex(rng, depth - 1);
  return rng() % 2 == 0 ? RegexNode::Concat(std::move(l), std::move(r))
                        : RegexNode::Union(std::move(l), std::move(r));
}

PropertyGraph TrialGraph(uint64_t seed, bool force_acyclic) {
  UniformMultigraphOptions gopts;
  gopts.num_nodes = 5 + seed % 3;
  gopts.num_edges = 8 + seed % 5;
  gopts.labels = kLabels;
  gopts.unlabeled_percent = 10;
  gopts.acyclic = force_acyclic || seed % 2 == 0;
  gopts.seed = seed;
  return MakeUniformMultigraph(gopts);
}

ParallelOptions Par(size_t threads) {
  ParallelOptions par;
  par.threads = threads;
  par.min_chunk = 1;  // tiny fuzz inputs must actually chunk at t > 1
  return par;
}

/// ϕ_sem over the materialized base set Eval(compile(inner)).
Result<PathSet> MaterializedPhi(const PropertyGraph& g, const RegexPtr& inner,
                                PathSemantics semantics,
                                const EvalLimits& limits, PhiEngine engine) {
  auto base = Evaluate(g, CompileRegex(inner));
  if (!base.ok()) return base.status();
  return Recursive(*base, semantics, limits, engine);
}

std::string Describe(uint64_t seed, const RegexPtr& inner,
                     PathSemantics semantics) {
  return "seed " + std::to_string(seed) + " inner `" + inner->ToString() +
         "` semantics " + PathSemanticsToString(semantics);
}

class FrontierDifferentialTest
    : public ::testing::TestWithParam<PathSemantics> {};

// --- Satellite 4: frontier ≡ semi-naive ≡ baseline, t-sweep identity ----

TEST_P(FrontierDifferentialTest, MatchesSemiNaiveAndBaselineFuzz) {
  const PathSemantics semantics = GetParam();
  // truncate=true with a huge max_paths: max_path_length acts as a pure
  // silent cap, so every engine returns the same *complete* capped set
  // regardless of its enumeration order.
  EvalLimits limits;
  limits.max_path_length = 7;
  limits.max_paths = 1'000'000;
  limits.truncate = true;

  for (uint64_t seed = 1; seed <= 240; ++seed) {
    std::mt19937_64 rng(seed * 7919 + static_cast<uint64_t>(semantics));
    const PropertyGraph g =
        TrialGraph(seed, /*force_acyclic=*/semantics == PathSemantics::kWalk);
    const RegexPtr inner = RandomClosureFreeRegex(rng, 2);
    const std::string ctx = Describe(seed, inner, semantics);
    ASSERT_TRUE(FrontierEligible(inner)) << ctx;

    auto frontier = FrontierClosure(g, inner, semantics, limits, Par(1));
    ASSERT_TRUE(frontier.ok()) << ctx << ": " << frontier.status().ToString();

    auto semi = MaterializedPhi(g, inner, semantics, limits,
                                PhiEngine::kOptimized);
    ASSERT_TRUE(semi.ok()) << ctx << ": " << semi.status().ToString();
    EXPECT_EQ(*frontier, *semi) << ctx << ": frontier ("
                                << frontier->size() << " paths) != semi-naive ("
                                << semi->size() << " paths)";

    AutomatonEvalOptions aopts;
    aopts.semantics = semantics;
    aopts.limits = limits;
    auto baseline = EvaluateRpqAutomaton(g, RegexNode::Plus(inner), aopts);
    ASSERT_TRUE(baseline.ok()) << ctx << ": " << baseline.status().ToString();
    EXPECT_EQ(*frontier, *baseline)
        << ctx << ": frontier (" << frontier->size()
        << " paths) != automaton baseline (" << baseline->size() << " paths)";

    // Byte-identity across the thread sweep, for the frontier engine and
    // the parallelized baseline alike: same paths in the same insertion
    // order at every thread count.
    for (size_t t : {2u, 4u, 8u}) {
      auto ft = FrontierClosure(g, inner, semantics, limits, Par(t));
      ASSERT_TRUE(ft.ok()) << ctx << " t=" << t;
      EXPECT_EQ(ft->paths(), frontier->paths())
          << ctx << ": frontier t=" << t << " diverged from t=1";

      AutomatonEvalOptions apar = aopts;
      apar.parallel = Par(t);
      auto bt = EvaluateRpqAutomaton(g, RegexNode::Plus(inner), apar);
      ASSERT_TRUE(bt.ok()) << ctx << " t=" << t;
      EXPECT_EQ(bt->paths(), baseline->paths())
          << ctx << ": baseline t=" << t << " diverged from t=1";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSemantics, FrontierDifferentialTest,
    ::testing::Values(PathSemantics::kWalk, PathSemantics::kTrail,
                      PathSemantics::kAcyclic, PathSemantics::kSimple,
                      PathSemantics::kShortest),
    [](const ::testing::TestParamInfo<PathSemantics>& info) {
      return PathSemanticsToString(info.param);
    });

// --- Satellite 2: exact-budget edge cases across all four engines -------

/// Runs all four engines on ϕ_sem(:a) under `limits` and checks the
/// cross-engine contract: byte-equal Status; equal sets when OK; exactly
/// min(max_paths, |answer|) paths, each from the full answer, when
/// truncated. `full` is the budget-free answer.
void ExpectBudgetParity(const PropertyGraph& g, PathSemantics semantics,
                        const EvalLimits& limits, const PathSet& full,
                        const std::string& ctx) {
  const RegexPtr atom = RegexNode::Label("a");

  struct Run {
    const char* name;
    Result<PathSet> r;
  };
  AutomatonEvalOptions aopts;
  aopts.semantics = semantics;
  aopts.limits = limits;
  std::vector<Run> runs;
  runs.push_back({"naive", MaterializedPhi(g, atom, semantics, limits,
                                           PhiEngine::kNaive)});
  runs.push_back({"semi-naive", MaterializedPhi(g, atom, semantics, limits,
                                                PhiEngine::kOptimized)});
  runs.push_back(
      {"frontier", FrontierClosure(g, atom, semantics, limits, Par(1))});
  runs.push_back({"baseline",
                  EvaluateRpqAutomaton(g, RegexNode::Plus(atom), aopts)});

  const std::string status0 = runs[0].r.status().ToString();
  for (const Run& run : runs) {
    EXPECT_EQ(run.r.status().ToString(), status0)
        << ctx << ": " << run.name << " Status diverged from naive";
  }
  if (!runs[0].r.ok()) return;

  const size_t expect_size = std::min(limits.max_paths, full.size());
  for (const Run& run : runs) {
    if (!run.r.ok()) continue;  // already reported above
    EXPECT_EQ(run.r->size(), expect_size)
        << ctx << ": " << run.name << " returned wrong answer size";
    for (const Path& p : *run.r) {
      EXPECT_TRUE(full.Contains(p))
          << ctx << ": " << run.name << " emitted " << p.ToString()
          << " which is not in the full answer";
    }
    if (expect_size == full.size()) {
      EXPECT_EQ(*run.r, full) << ctx << ": " << run.name
                              << " differs from the full answer";
    }
  }
}

TEST(FrontierDifferentialBudgetTest, ExactMaxPathsEdgeCases) {
  const RegexPtr atom = RegexNode::Label("a");
  for (PathSemantics semantics :
       {PathSemantics::kWalk, PathSemantics::kTrail, PathSemantics::kAcyclic,
        PathSemantics::kSimple}) {
    for (uint64_t seed = 1; seed <= 12; ++seed) {
      // DAGs keep every WALK answer finite without leaning on the cap.
      const PropertyGraph g = TrialGraph(seed, /*force_acyclic=*/true);

      auto full = FrontierClosure(g, atom, semantics, {}, Par(1));
      ASSERT_TRUE(full.ok()) << full.status().ToString();
      auto base = Evaluate(g, CompileRegex(atom));
      ASSERT_TRUE(base.ok());
      const size_t base_size = RestrictPaths(*base, semantics).size();
      const size_t answer = full->size();

      std::set<size_t> caps = {0, 1, base_size, answer};
      if (answer > 0) caps.insert(answer - 1);
      for (size_t max_paths : caps) {
        for (bool truncate : {false, true}) {
          EvalLimits limits;
          limits.max_paths = max_paths;
          limits.truncate = truncate;
          ExpectBudgetParity(
              g, semantics, limits, *full,
              "seed " + std::to_string(seed) + " semantics " +
                  PathSemanticsToString(semantics) + " max_paths=" +
                  std::to_string(max_paths) +
                  (truncate ? " truncate" : " strict"));
        }
      }
    }
  }
}

TEST(FrontierDifferentialBudgetTest, ExactMaxIterationsEdgeCases) {
  // max_iterations is a fixpoint-round budget; the automaton baseline has
  // no fixpoint and is excluded (eval_budget.h). After r surviving rounds
  // all three algebra engines hold exactly the ≤(r+1)-segment
  // compositions, so truncated partial answers are set-equal too.
  const RegexPtr atom = RegexNode::Label("a");
  for (PathSemantics semantics :
       {PathSemantics::kWalk, PathSemantics::kTrail, PathSemantics::kAcyclic,
        PathSemantics::kSimple}) {
    for (uint64_t seed = 1; seed <= 12; ++seed) {
      const PropertyGraph g = TrialGraph(seed, /*force_acyclic=*/true);
      for (size_t max_iterations : {0u, 1u, 2u}) {
        for (bool truncate : {false, true}) {
          EvalLimits limits;
          limits.max_iterations = max_iterations;
          limits.truncate = truncate;
          const std::string ctx =
              "seed " + std::to_string(seed) + " semantics " +
              PathSemanticsToString(semantics) + " max_iterations=" +
              std::to_string(max_iterations) +
              (truncate ? " truncate" : " strict");

          auto naive = MaterializedPhi(g, atom, semantics, limits,
                                       PhiEngine::kNaive);
          auto semi = MaterializedPhi(g, atom, semantics, limits,
                                      PhiEngine::kOptimized);
          auto frontier =
              FrontierClosure(g, atom, semantics, limits, Par(1));
          EXPECT_EQ(semi.status().ToString(), naive.status().ToString())
              << ctx;
          EXPECT_EQ(frontier.status().ToString(), naive.status().ToString())
              << ctx;
          if (naive.ok() && semi.ok() && frontier.ok()) {
            EXPECT_EQ(*semi, *naive) << ctx;
            EXPECT_EQ(*frontier, *naive) << ctx;
          }
        }
      }
    }
  }
}

TEST(FrontierDifferentialBudgetTest, EmptyBaseWithZeroIterationsIsFixpoint) {
  // ϕ0 = ∅ is already a verified fixpoint: no engine may charge a round
  // for it, even at max_iterations = 0 (the naive engine used to).
  GraphBuilder b;
  b.AddNode("Node");
  b.AddNode("Node");
  const PropertyGraph g = b.Build();  // no edges at all
  const RegexPtr atom = RegexNode::Label("a");
  EvalLimits limits;
  limits.max_iterations = 0;
  for (PathSemantics semantics :
       {PathSemantics::kWalk, PathSemantics::kTrail, PathSemantics::kAcyclic,
        PathSemantics::kSimple}) {
    auto naive = MaterializedPhi(g, atom, semantics, limits,
                                 PhiEngine::kNaive);
    auto semi = MaterializedPhi(g, atom, semantics, limits,
                                PhiEngine::kOptimized);
    auto frontier = FrontierClosure(g, atom, semantics, limits, Par(1));
    ASSERT_TRUE(naive.ok()) << naive.status().ToString();
    ASSERT_TRUE(semi.ok()) << semi.status().ToString();
    ASSERT_TRUE(frontier.ok()) << frontier.status().ToString();
    EXPECT_TRUE(naive->empty());
    EXPECT_TRUE(semi->empty());
    EXPECT_TRUE(frontier->empty());
  }
}

// --- Satellite 3: max_paths beats max_path_length when both trip --------

TEST(FrontierDifferentialTest, BudgetPrecedenceMaxPathsBeforeMaxPathLength) {
  // A 6-node a-chain under TRAIL: the full answer holds 15 paths (all
  // sub-chains), 5 of length 1. With max_path_length = 1 the dropped flag
  // is guaranteed (every 2-edge composition is admissible but overlong)
  // and with max_paths = 3 the path budget also trips (5 distinct
  // length-1 results > 3). Every engine must report max_paths — the
  // during-enumeration budget — never the at-fixpoint length flag.
  const PropertyGraph g = MakeChainGraph(6, "a");
  const RegexPtr atom = RegexNode::Label("a");
  EvalLimits limits;
  limits.max_path_length = 1;
  limits.max_paths = 3;

  AutomatonEvalOptions aopts;
  aopts.semantics = PathSemantics::kTrail;
  aopts.limits = limits;
  const Result<PathSet> runs[] = {
      MaterializedPhi(g, atom, PathSemantics::kTrail, limits,
                      PhiEngine::kNaive),
      MaterializedPhi(g, atom, PathSemantics::kTrail, limits,
                      PhiEngine::kOptimized),
      FrontierClosure(g, atom, PathSemantics::kTrail, limits, Par(1)),
      EvaluateRpqAutomaton(g, RegexNode::Plus(atom), aopts),
  };
  for (const Result<PathSet>& r : runs) {
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
    EXPECT_NE(r.status().ToString().find("max_paths"), std::string::npos)
        << "expected the max_paths budget to win: " << r.status().ToString();
    EXPECT_EQ(r.status().ToString(), runs[0].status().ToString());
  }

  // With truncate the same double-trip returns exactly max_paths paths.
  limits.truncate = true;
  aopts.limits = limits;
  const Result<PathSet> truncated[] = {
      MaterializedPhi(g, atom, PathSemantics::kTrail, limits,
                      PhiEngine::kNaive),
      MaterializedPhi(g, atom, PathSemantics::kTrail, limits,
                      PhiEngine::kOptimized),
      FrontierClosure(g, atom, PathSemantics::kTrail, limits, Par(1)),
      EvaluateRpqAutomaton(g, RegexNode::Plus(atom), aopts),
  };
  for (const Result<PathSet>& r : truncated) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->size(), 3u);
  }
}

// --- Tentpole plumbing: fused evaluator ≡ unfused plan evaluation -------

TEST(FrontierDifferentialTest, FusedEvaluatorMatchesUnfused) {
  for (PathSemantics semantics :
       {PathSemantics::kWalk, PathSemantics::kTrail, PathSemantics::kAcyclic,
        PathSemantics::kSimple, PathSemantics::kShortest}) {
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      std::mt19937_64 rng(seed * 104729 + static_cast<uint64_t>(semantics));
      const PropertyGraph g = TrialGraph(
          seed, /*force_acyclic=*/semantics == PathSemantics::kWalk);
      const RegexPtr inner = RandomClosureFreeRegex(rng, 2);
      const RegexPtr closure = RegexNode::Plus(inner);
      const std::string ctx = Describe(seed, inner, semantics);

      CompileOptions copts;
      copts.semantics = semantics;
      const PlanPtr plan = CompileRegex(closure, copts);

      EvalOptions fused;
      fused.limits.max_path_length = 7;
      fused.limits.truncate = true;
      EvalStats stats;
      fused.stats = &stats;
      EvalOptions unfused = fused;
      unfused.fuse_closures = false;
      unfused.stats = nullptr;

      auto without = Evaluate(g, plan, unfused);
      auto with = Evaluate(g, plan, fused);
      ASSERT_EQ(with.status().ToString(), without.status().ToString()) << ctx;
      ASSERT_TRUE(with.ok()) << ctx << ": " << with.status().ToString();
      EXPECT_EQ(*with, *without) << ctx;
      EXPECT_EQ(stats.fused_closure_hits, 1u) << ctx;
      EXPECT_GT(stats.op_count[static_cast<size_t>(PlanKind::kRecursive)], 0u)
          << ctx;
      if (!with->empty()) {
        EXPECT_GT(stats.frontier_states_expanded, 0u) << ctx;
        EXPECT_GT(stats.frontier_paths_reconstructed, 0u) << ctx;
      }
    }
  }
}

TEST(FrontierDifferentialTest, IneligiblePlansFallBackToMaterializingPhi) {
  // ((:a)+)+ — the OUTER ϕ's child subtree is itself a kRecursive, which
  // fusion rejects, so the outer node must fall back to materializing ϕ;
  // the inner ϕ(:a) is eligible and still fuses. Results must agree with
  // fuse_closures=false either way.
  const PropertyGraph g = MakeChainGraph(5, "a");
  const RegexPtr nested = RegexNode::Plus(RegexNode::Plus(
      RegexNode::Label("a")));
  CompileOptions copts;
  copts.semantics = PathSemantics::kTrail;
  const PlanPtr plan = CompileRegex(nested, copts);

  EvalOptions fused;
  EvalStats stats;
  fused.stats = &stats;
  EvalOptions unfused = fused;
  unfused.fuse_closures = false;
  unfused.stats = nullptr;

  auto with = Evaluate(g, plan, fused);
  auto without = Evaluate(g, plan, unfused);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  ASSERT_TRUE(without.ok()) << without.status().ToString();
  EXPECT_EQ(*with, *without);
  // Exactly the inner ϕ fused; the outer one ran the materializing engine.
  EXPECT_EQ(stats.fused_closure_hits, 1u);
  EXPECT_GT(stats.op_count[static_cast<size_t>(PlanKind::kRecursive)], 1u);
}

}  // namespace
}  // namespace pathalg
