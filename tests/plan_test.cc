// Tests for the logical-plan layer: construction, validation (typing
// rules), static length bounds, structural equality, printers, and the
// evaluator reproducing the paper's Figures 2–5 on the Figure 1 graph.

#include <gtest/gtest.h>

#include "plan/evaluator.h"
#include "plan/plan.h"
#include "workload/figure1.h"

namespace pathalg {
namespace {

PlanPtr KnowsEdgesPlan() {
  return PlanNode::Select(EdgeLabelEq(1, "Knows"), PlanNode::EdgesScan());
}

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override { g_ = MakeFigure1Graph(&ids_); }
  PropertyGraph g_;
  Figure1Ids ids_;
};

TEST_F(PlanTest, ValidateAcceptsWellTypedPlans) {
  PlanPtr plan = PlanNode::Project(
      {std::nullopt, std::nullopt, 1},
      PlanNode::OrderBy(
          OrderKey::kA,
          PlanNode::GroupBy(GroupKey::kST,
                            PlanNode::Recursive(PathSemantics::kTrail,
                                                KnowsEdgesPlan()))));
  EXPECT_TRUE(plan->Validate().ok());
}

TEST_F(PlanTest, ValidateRejectsSpaceWherePathsExpected) {
  // ⋈ over a solution space is ill-typed.
  PlanPtr bad = PlanNode::Join(
      PlanNode::GroupBy(GroupKey::kST, PlanNode::EdgesScan()),
      PlanNode::EdgesScan());
  EXPECT_TRUE(bad->Validate().IsInvalidArgument());
  // ϕ over a solution space is ill-typed.
  PlanPtr bad2 = PlanNode::Recursive(
      PathSemantics::kWalk,
      PlanNode::GroupBy(GroupKey::kST, PlanNode::EdgesScan()));
  EXPECT_TRUE(bad2->Validate().IsInvalidArgument());
}

TEST_F(PlanTest, ValidateRejectsPathsWhereSpaceExpected) {
  // τ and π need a solution space input.
  EXPECT_TRUE(PlanNode::OrderBy(OrderKey::kA, PlanNode::EdgesScan())
                  ->Validate()
                  .IsInvalidArgument());
  EXPECT_TRUE(PlanNode::Project({std::nullopt, std::nullopt, std::nullopt},
                                PlanNode::EdgesScan())
                  ->Validate()
                  .IsInvalidArgument());
}

TEST_F(PlanTest, ValidateRejectsNullSelectCondition) {
  PlanPtr bad = PlanNode::Select(nullptr, PlanNode::EdgesScan());
  EXPECT_TRUE(bad->Validate().IsInvalidArgument());
}

TEST_F(PlanTest, LengthBounds) {
  EXPECT_EQ(PlanNode::NodesScan()->Bounds().min, 0u);
  EXPECT_EQ(*PlanNode::NodesScan()->Bounds().max, 0u);
  EXPECT_EQ(PlanNode::EdgesScan()->Bounds().min, 1u);
  EXPECT_EQ(*PlanNode::EdgesScan()->Bounds().max, 1u);

  PlanPtr join = PlanNode::Join(PlanNode::EdgesScan(), PlanNode::EdgesScan());
  EXPECT_EQ(join->Bounds().min, 2u);
  EXPECT_EQ(*join->Bounds().max, 2u);

  PlanPtr uni = PlanNode::Union(PlanNode::NodesScan(), join);
  EXPECT_EQ(uni->Bounds().min, 0u);
  EXPECT_EQ(*uni->Bounds().max, 2u);

  PlanPtr phi = PlanNode::Recursive(PathSemantics::kTrail, KnowsEdgesPlan());
  EXPECT_EQ(phi->Bounds().min, 1u);
  EXPECT_FALSE(phi->Bounds().max.has_value());

  // ϕ over zero-length-only input stays bounded.
  PlanPtr phi0 =
      PlanNode::Recursive(PathSemantics::kWalk, PlanNode::NodesScan());
  EXPECT_EQ(*phi0->Bounds().max, 0u);

  PlanPtr isect = PlanNode::Intersect(uni, PlanNode::EdgesScan());
  EXPECT_EQ(isect->Bounds().min, 1u);
  EXPECT_EQ(*isect->Bounds().max, 1u);
}

TEST_F(PlanTest, StructuralEquality) {
  PlanPtr a = PlanNode::Recursive(PathSemantics::kTrail, KnowsEdgesPlan());
  PlanPtr b = PlanNode::Recursive(PathSemantics::kTrail, KnowsEdgesPlan());
  PlanPtr c = PlanNode::Recursive(PathSemantics::kSimple, KnowsEdgesPlan());
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_FALSE(a->Equals(*KnowsEdgesPlan()));

  PlanPtr p1 = PlanNode::Project({1, std::nullopt, std::nullopt},
                                 PlanNode::GroupBy(GroupKey::kST, a));
  PlanPtr p2 = PlanNode::Project({1, std::nullopt, std::nullopt},
                                 PlanNode::GroupBy(GroupKey::kST, b));
  PlanPtr p3 = PlanNode::Project({2, std::nullopt, std::nullopt},
                                 PlanNode::GroupBy(GroupKey::kST, b));
  EXPECT_TRUE(p1->Equals(*p2));
  EXPECT_FALSE(p1->Equals(*p3));
}

TEST_F(PlanTest, AlgebraPrinter) {
  PlanPtr plan = PlanNode::Project(
      {std::nullopt, std::nullopt, 1},
      PlanNode::OrderBy(
          OrderKey::kA,
          PlanNode::GroupBy(GroupKey::kST,
                            PlanNode::Recursive(PathSemantics::kTrail,
                                                KnowsEdgesPlan()))));
  EXPECT_EQ(plan->ToAlgebraString(),
            "π(*,*,1)(τ[A](γ[ST](ϕ[TRAIL](σ[label(edge(1)) = \"Knows\"]"
            "(Edges(G))))))");
}

TEST_F(PlanTest, TreePrinter) {
  PlanPtr plan = PlanNode::Union(
      PlanNode::Recursive(PathSemantics::kSimple, KnowsEdgesPlan()),
      PlanNode::NodesScan());
  std::string tree = plan->ToTreeString();
  EXPECT_EQ(tree,
            "Union\n"
            "  Recursive (SIMPLE)\n"
            "    Select (label(edge(1)) = \"Knows\")\n"
            "      Edges(G)\n"
            "  Nodes(G)\n");
}

// ---------------------------------------------------------------------------
// Evaluator: the paper's figures end-to-end.
// ---------------------------------------------------------------------------

TEST_F(PlanTest, EvaluateFigure3CorePlan) {
  // Figure 3: σ_{first.name="Moe"}(σK(Se) ∪ (σK(Se) ⋈ σK(Se))).
  PlanPtr plan = PlanNode::Select(
      FirstPropEq("name", Value("Moe")),
      PlanNode::Union(KnowsEdgesPlan(),
                      PlanNode::Join(KnowsEdgesPlan(), KnowsEdgesPlan())));
  auto r = Evaluate(g_, plan);
  ASSERT_TRUE(r.ok());
  PathSet expected;
  expected.Insert(Path({ids_.n1, ids_.n2}, {ids_.e1}));
  expected.Insert(Path({ids_.n1, ids_.n2, ids_.n3}, {ids_.e1, ids_.e2}));
  expected.Insert(Path({ids_.n1, ids_.n2, ids_.n4}, {ids_.e1, ids_.e4}));
  EXPECT_EQ(*r, expected);
}

TEST_F(PlanTest, EvaluateFigure2RecursivePlanUnderSimple) {
  // Figure 2 with ϕSimple: the paper states the result is exactly
  //   path1 = (n1, e1, n2, e4, n4)
  //   path2 = (n1, e8, n6, e11, n3, e7, n7, e10, n4).
  PlanPtr likes =
      PlanNode::Select(EdgeLabelEq(1, "Likes"), PlanNode::EdgesScan());
  PlanPtr hc =
      PlanNode::Select(EdgeLabelEq(1, "Has_creator"), PlanNode::EdgesScan());
  PlanPtr plan = PlanNode::Select(
      Condition::And(FirstPropEq("name", Value("Moe")),
                     LastPropEq("name", Value("Apu"))),
      PlanNode::Union(
          PlanNode::Recursive(PathSemantics::kSimple, KnowsEdgesPlan()),
          PlanNode::Recursive(PathSemantics::kSimple,
                              PlanNode::Join(likes, hc))));
  auto r = Evaluate(g_, plan);
  ASSERT_TRUE(r.ok());
  PathSet expected;
  expected.Insert(Path({ids_.n1, ids_.n2, ids_.n4}, {ids_.e1, ids_.e4}));
  expected.Insert(Path({ids_.n1, ids_.n6, ids_.n3, ids_.n7, ids_.n4},
                       {ids_.e8, ids_.e11, ids_.e7, ids_.e10}));
  EXPECT_EQ(*r, expected);
}

TEST_F(PlanTest, EvaluateFigure4KleeneStarPlan) {
  // Figure 4's right branch: ϕ((σLikes(E) ⋈ σHC(E))) ∪ Nodes(G) — the
  // Kleene star (Likes/Has_creator)* under walk semantics. On Figure 1 the
  // Likes/Has_creator composition is a 6-cycle, so walks diverge; with
  // Simple they don't.
  PlanPtr likes =
      PlanNode::Select(EdgeLabelEq(1, "Likes"), PlanNode::EdgesScan());
  PlanPtr hc =
      PlanNode::Select(EdgeLabelEq(1, "Has_creator"), PlanNode::EdgesScan());
  PlanPtr star = PlanNode::Union(
      PlanNode::Recursive(PathSemantics::kSimple, PlanNode::Join(likes, hc)),
      PlanNode::NodesScan());
  auto r = Evaluate(g_, star);
  ASSERT_TRUE(r.ok());
  // Zero-length paths for all 7 nodes are present (Kleene star matches ε).
  for (NodeId n = 0; n < g_.num_nodes(); ++n) {
    EXPECT_TRUE(r->Contains(Path::SingleNode(n)));
  }
  // …plus the simple (Likes/Has_creator)+ compositions.
  EXPECT_TRUE(r->Contains(Path({ids_.n1, ids_.n6, ids_.n3, ids_.n7, ids_.n4},
                               {ids_.e8, ids_.e11, ids_.e7, ids_.e10})));
}

TEST_F(PlanTest, EvaluateFigure5Pipeline) {
  // π(*,*,1)(τA(γST(ϕTrail(σKnows(Edges))))) — ANY SHORTEST TRAIL.
  PlanPtr plan = PlanNode::Project(
      {std::nullopt, std::nullopt, 1},
      PlanNode::OrderBy(
          OrderKey::kA,
          PlanNode::GroupBy(GroupKey::kST,
                            PlanNode::Recursive(PathSemantics::kTrail,
                                                KnowsEdgesPlan()))));
  auto r = Evaluate(g_, plan);
  ASSERT_TRUE(r.ok());
  // One shortest trail per (s,t) pair. The full trail set has 9 pairs (the
  // paper's Table 5 walkthrough shows the 7 pairs covered by Table 3).
  EXPECT_EQ(r->size(), 9u);
  // The paper's Fig. 5 output paths are all present:
  for (const Path& p : std::vector<Path>{
           Path({ids_.n1, ids_.n2}, {ids_.e1}),
           Path({ids_.n1, ids_.n2, ids_.n3}, {ids_.e1, ids_.e2}),
           Path({ids_.n1, ids_.n2, ids_.n4}, {ids_.e1, ids_.e4}),
           Path({ids_.n2, ids_.n3, ids_.n2}, {ids_.e2, ids_.e3}),
           Path({ids_.n2, ids_.n3}, {ids_.e2}),
           Path({ids_.n2, ids_.n4}, {ids_.e4}),
           Path({ids_.n3, ids_.n2, ids_.n4}, {ids_.e3, ids_.e4})}) {
    EXPECT_TRUE(r->Contains(p)) << p.ToString(g_);
  }
}

TEST_F(PlanTest, EvaluateSpaceTypedRoot) {
  PlanPtr gamma = PlanNode::GroupBy(GroupKey::kST, KnowsEdgesPlan());
  // Evaluate() refuses space-typed roots; EvaluateToSpace handles them.
  EXPECT_TRUE(Evaluate(g_, gamma).status().IsInvalidArgument());
  auto space = EvaluateToSpace(g_, gamma);
  ASSERT_TRUE(space.ok());
  EXPECT_EQ(space->num_paths(), 4u);
  EXPECT_EQ(space->num_partitions(), 4u);
  // And the reverse mismatch:
  EXPECT_TRUE(
      EvaluateToSpace(g_, KnowsEdgesPlan()).status().IsInvalidArgument());
}

TEST_F(PlanTest, EvaluatePropagatesPhiBudgetErrors) {
  PlanPtr walk = PlanNode::Recursive(PathSemantics::kWalk, KnowsEdgesPlan());
  EvalOptions opts;
  opts.limits.max_path_length = 8;
  opts.limits.truncate = false;
  EXPECT_TRUE(Evaluate(g_, walk, opts).status().IsResourceExhausted());
  opts.limits.truncate = true;
  EXPECT_TRUE(Evaluate(g_, walk, opts).ok());
}

TEST_F(PlanTest, EvaluateNullPlanFails) {
  EXPECT_TRUE(Evaluate(g_, nullptr).status().IsInvalidArgument());
}

TEST_F(PlanTest, EvaluateWithNaiveEngineMatchesOptimizedEngine) {
  // EvalOptions.engine threads through to every ϕ in the plan.
  PlanPtr plan = PlanNode::Project(
      {std::nullopt, std::nullopt, 1},
      PlanNode::OrderBy(
          OrderKey::kA,
          PlanNode::GroupBy(GroupKey::kST,
                            PlanNode::Recursive(PathSemantics::kTrail,
                                                KnowsEdgesPlan()))));
  EvalOptions naive;
  naive.engine = PhiEngine::kNaive;
  EvalOptions optimized;
  optimized.engine = PhiEngine::kOptimized;
  auto a = Evaluate(g_, plan, naive);
  auto b = Evaluate(g_, plan, optimized);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(PlanTest, IntersectAndDifferencePlans) {
  PlanPtr knows_or_likes = PlanNode::Union(
      KnowsEdgesPlan(),
      PlanNode::Select(EdgeLabelEq(1, "Likes"), PlanNode::EdgesScan()));
  PlanPtr diff = PlanNode::Difference(PlanNode::EdgesScan(), knows_or_likes);
  auto r = Evaluate(g_, diff);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);  // the 3 Has_creator edges
  PlanPtr isect = PlanNode::Intersect(PlanNode::EdgesScan(), knows_or_likes);
  auto r2 = Evaluate(g_, isect);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 8u);
}

}  // namespace
}  // namespace pathalg
